#include "mgmt/pmgr.hpp"

#include <charconv>
#include <memory>
#include <vector>

#include "parallel/sharded_datapath.hpp"
#include "pkt/sanitize.hpp"
#include "resilience/resilience.hpp"
#include "telemetry/telemetry.hpp"

namespace rp::mgmt {

namespace {

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_f64(std::string_view s, double& out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_iface(std::string_view s, pkt::IfIndex& out) {
  if (s.starts_with("if")) s.remove_prefix(2);
  std::uint32_t v;
  if (!parse_u32(s, v) || v >= pkt::kAnyIface) return false;
  out = static_cast<pkt::IfIndex>(v);
  return true;
}

plugin::Config parse_kv(const std::vector<std::string>& tok, std::size_t from) {
  plugin::Config cfg;
  for (std::size_t i = from; i < tok.size(); ++i) {
    std::size_t eq = tok[i].find('=');
    if (eq == std::string::npos)
      cfg.set(tok[i], "");
    else
      cfg.set(tok[i].substr(0, eq), tok[i].substr(eq + 1));
  }
  return cfg;
}

bool parse_gate(std::string_view s, plugin::PluginType& out) {
  for (std::uint16_t t = 1; t < telemetry::kGateSlots; ++t) {
    auto type = static_cast<plugin::PluginType>(t);
    if (s == plugin::to_string(type)) {
      out = type;
      return true;
    }
  }
  return false;
}

bool parse_fault_kind(std::string_view s, resilience::FaultKind& out) {
  for (std::size_t k = 0; k < resilience::kFaultKinds; ++k) {
    auto kind = static_cast<resilience::FaultKind>(k);
    if (s == resilience::to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

bool parse_fallback(std::string_view s, resilience::Fallback& out) {
  for (auto f : {resilience::Fallback::fail_open, resilience::Fallback::fail_closed,
                 resilience::Fallback::best_effort}) {
    if (s == resilience::to_string(f)) {
      out = f;
      return true;
    }
  }
  return false;
}

const char* verdict_name(std::uint8_t v) {
  switch (static_cast<plugin::Verdict>(v)) {
    case plugin::Verdict::cont: return "cont";
    case plugin::Verdict::consumed: return "consumed";
    case plugin::Verdict::drop: return "drop";
  }
  return "?";
}

std::string format_trace(const telemetry::TraceRecord& tr) {
  std::string out = "#" + std::to_string(tr.seq) + " " + tr.key.to_string() +
                    " if" + std::to_string(tr.in_iface) + "->";
  out += tr.out_iface == pkt::kAnyIface ? "-"
                                        : "if" + std::to_string(tr.out_iface);
  out += " ";
  out += telemetry::to_string(tr.disposition);
  if (tr.disposition == telemetry::Disposition::dropped)
    out += "(" + std::string(core::to_string(
                     static_cast<core::DropReason>(tr.drop_reason))) +
           ")";
  out += " cycles=" + std::to_string(tr.total_cycles);
  for (std::uint8_t i = 0; i < tr.n_steps; ++i) {
    const auto& s = tr.steps[i];
    out += std::string("\n    ") + std::string(plugin::to_string(s.gate)) +
           ": " + verdict_name(s.verdict) + " " + std::to_string(s.cycles) +
           "cy";
  }
  return out;
}

// One line of per-check ingress-sanitization counters; shared by the
// `sanitize` command, the telemetry summary, and `shard counters`.
std::string format_sanitize(const core::CoreCounters& cc) {
  std::string out = "sanitize: dropped=" +
                    std::to_string(cc.total_sanitize_drops()) +
                    " trimmed=" + std::to_string(cc.sanitize_trimmed);
  for (std::size_t i = 1;
       i < static_cast<std::size_t>(pkt::SanitizeCheck::kCount); ++i)
    if (cc.sanitize_drops[i])
      out += " " + std::string(pkt::to_string(
                       static_cast<pkt::SanitizeCheck>(i))) +
             "=" + std::to_string(cc.sanitize_drops[i]);
  return out;
}

std::string join_from(const std::vector<std::string>& tok, std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < tok.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += tok[i];
  }
  return out;
}

}  // namespace

PluginManager::Result PluginManager::exec(std::string_view command) {
  auto tok = split_ws(command);
  if (tok.empty() || tok[0][0] == '#') return {Status::ok, ""};
  const std::string& cmd = tok[0];

  auto usage = [&](const char* u) {
    return Result{Status::invalid_argument, std::string("usage: ") + u};
  };

  if (cmd == "modload") {
    if (tok.size() != 2) return usage("modload <module>");
    Status s = lib_.modload(tok[1]);
    return {s, s == Status::ok ? "loaded " + tok[1] : "modload failed"};
  }
  if (cmd == "modunload") {
    if (tok.size() != 2) return usage("modunload <module>");
    Status s = lib_.modunload(tok[1]);
    return {s, s == Status::ok ? "unloaded " + tok[1] : "modunload failed"};
  }
  if (cmd == "lsmod") {
    if (tok.size() != 1) return usage("lsmod");
    std::string text = "available:";
    for (const auto& m : plugin::PluginLoader::available_modules())
      text += " " + m;
    text += "\nloaded:";
    for (const auto& m : lib_.kernel().loader().loaded_modules())
      text += " " + m;
    return {Status::ok, text};
  }
  if (cmd == "create") {
    if (tok.size() < 2) return usage("create <plugin> [k=v ...]");
    plugin::InstanceId id;
    Status s = lib_.create_instance(tok[1], parse_kv(tok, 2), id);
    if (s != Status::ok) return {s, "create failed"};
    return {s, "instance " + std::to_string(id)};
  }
  if (cmd == "free") {
    if (tok.size() != 3) return usage("free <plugin> <id>");
    std::uint32_t id;
    if (!parse_u32(tok[2], id)) return usage("free <plugin> <id>");
    return {lib_.free_instance(tok[1], id), ""};
  }
  if (cmd == "bind" || cmd == "unbind") {
    if (tok.size() < 4) return usage("(un)bind <plugin> <id> <filter>");
    std::uint32_t id;
    if (!parse_u32(tok[2], id)) return usage("(un)bind <plugin> <id> <filter>");
    std::string spec = join_from(tok, 3);
    Status s = cmd == "bind" ? lib_.bind(tok[1], id, spec)
                             : lib_.unbind(tok[1], id, spec);
    return {s, s == Status::ok ? "" : "filter operation failed"};
  }
  if (cmd == "msg") {
    if (tok.size() < 4) return usage("msg <plugin> <id|-> <name> [k=v ...]");
    std::uint32_t id = plugin::kNoInstance;
    if (tok[2] != "-" && !parse_u32(tok[2], id))
      return usage("msg <plugin> <id|-> <name> [k=v ...]");
    auto reply = lib_.message(tok[1], id, tok[3], parse_kv(tok, 4));
    return {reply.status, reply.text};
  }
  if (cmd == "attach") {
    if (tok.size() != 4) return usage("attach <plugin> <id> <iface>");
    std::uint32_t id;
    pkt::IfIndex iface;
    if (!parse_u32(tok[2], id) || !parse_iface(tok[3], iface))
      return usage("attach <plugin> <id> <iface>");
    return {lib_.attach_scheduler(tok[1], id, iface), ""};
  }
  if (cmd == "aiu") {
    // Classifier introspection: flow-cache statistics and per-gate filter
    // counts — what an operator checks before/after reconfiguration.
    if (tok.size() != 1) return usage("aiu");
    auto& a = lib_.kernel().aiu();
    const auto& ft = a.flow_table();
    const auto& fs = ft.stats();
    std::string text =
        "flows: active=" + std::to_string(ft.active()) +
        " capacity=" + std::to_string(ft.capacity()) +
        " hits=" + std::to_string(fs.hits) +
        " misses=" + std::to_string(fs.misses) +
        " recycled=" + std::to_string(fs.recycled) +
        " flushes=" + std::to_string(a.stats().cache_flushes) + "\nfilters:";
    for (std::uint16_t t = 1; t < aiu::kNumGates; ++t) {
      auto type = static_cast<plugin::PluginType>(t);
      auto* table = a.filter_table(type);
      if (table && table->size())
        text += " " + std::string(plugin::to_string(type)) + "=" +
                std::to_string(table->size());
    }
    return {Status::ok, text};
  }
  if (cmd == "telemetry") {
    auto& tel = lib_.kernel().telemetry();
    // telemetry -> one-screen summary of the observability state.
    if (tok.size() == 1) {
      const auto& cc = lib_.kernel().core().counters();
      std::string text =
          "sampling: 1-in-" +
          (tel.sample_every() ? std::to_string(tel.sample_every())
                              : std::string("off")) +
          " samples=" + std::to_string(tel.samples()) +
          " traces=" + std::to_string(tel.traces().captured()) + "/" +
          std::to_string(tel.traces().capacity()) +
          "\nflow-export: records=" + std::to_string(tel.flows_exported()) +
          " sink=" + tel.sink().describe() +
          "\ncore: received=" + std::to_string(cc.received) +
          " forwarded=" + std::to_string(cc.forwarded) +
          " gate_calls=" + std::to_string(cc.gate_calls) +
          " bursts=" + std::to_string(cc.bursts) +
          "\ndrops: total=" + std::to_string(cc.total_drops());
      for (std::size_t r = 1; r < static_cast<std::size_t>(core::DropReason::kCount); ++r)
        if (cc.drops[r])
          text += " " + std::string(core::to_string(
                            static_cast<core::DropReason>(r))) +
                  "=" + std::to_string(cc.drops[r]);
      text += "\ngate-batch: groups=" + std::to_string(cc.gate_groups) +
              " group_pkts=" + std::to_string(cc.gate_group_pkts) +
              " fused_bursts=" + std::to_string(cc.fused_bursts) + " hist[";
      for (std::size_t b = 0; b < core::CoreCounters::kGroupHistBuckets; ++b) {
        if (b) text += " ";
        text += std::string(core::CoreCounters::group_hist_label(b)) + "=" +
                std::to_string(cc.group_size_hist[b]);
      }
      text += "]";
      // Driver-level view: rx ring overflows used to be counted per NIC but
      // surfaced nowhere — a silent loss class. received + nic rx_drops
      // should equal what the wire offered.
      const auto nt = lib_.kernel().interfaces().totals();
      text += "\nnics: rx=" + std::to_string(nt.rx_packets) +
              " rx_bytes=" + std::to_string(nt.rx_bytes) +
              " rx_drops=" + std::to_string(nt.rx_drops) +
              " tx=" + std::to_string(nt.tx_packets) +
              " tx_bytes=" + std::to_string(nt.tx_bytes);
      if (nt.rx_drops)
        for (auto& nic : lib_.kernel().interfaces())
          if (nic->counters().rx_drops)
            text += "\n  " + nic->name() + ": rx_drops=" +
                    std::to_string(nic->counters().rx_drops);
      text += "\n" + format_sanitize(cc);
      return {Status::ok, text};
    }
    const std::string& sub = tok[1];
    if (sub == "hist") {
      // telemetry hist            -> whole-pipeline cycle histogram
      // telemetry hist <gate>     -> per-gate histogram (ipopt, ipsec, ...)
      if (tok.size() == 2)
        return {Status::ok, "pipeline: " + tel.pipeline_hist().to_string()};
      plugin::PluginType gate;
      if (tok.size() != 3 || !parse_gate(tok[2], gate))
        return usage("telemetry hist [gate]");
      return {Status::ok, std::string(plugin::to_string(gate)) + ": " +
                              tel.gate_hist(gate).to_string()};
    }
    if (sub == "trace") {
      // telemetry trace [n] -> the n most recent sampled path traces.
      std::uint32_t n = 8;
      if (tok.size() > 3 || (tok.size() == 3 && !parse_u32(tok[2], n)))
        return usage("telemetry trace [n]");
      const auto& ring = tel.traces();
      if (n > ring.stored()) n = static_cast<std::uint32_t>(ring.stored());
      std::string text;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!text.empty()) text += "\n";
        text += format_trace(ring.recent(i));
      }
      return {Status::ok, text.empty() ? "no traces captured" : text};
    }
    if (sub == "sample") {
      // telemetry sample <N|off> -> instrument 1-in-N packets.
      std::uint32_t n = 0;
      if (tok.size() != 3 || (tok[2] != "off" && !parse_u32(tok[2], n)))
        return usage("telemetry sample <N|off>");
      tel.set_sample_every(n);
      return {Status::ok, n ? "sampling 1-in-" + std::to_string(n)
                            : std::string("sampling off")};
    }
    if (sub == "export") {
      // telemetry export -> snapshot every live flow-table entry through the
      // sink (reason=on-demand); eviction/expiry exports happen on their own.
      if (tok.size() != 2) return usage("telemetry export");
      auto& ft = lib_.kernel().aiu().flow_table();
      std::size_t n = 0;
      for (pkt::FlowIndex i = 0;
           i < static_cast<pkt::FlowIndex>(ft.capacity()); ++i) {
        const auto& r = ft.rec(i);
        if (!r.in_use) continue;
        tel.flow_closed({r.key, r.packets, r.bytes, r.first_seen, r.last_used,
                         telemetry::ExportReason::on_demand});
        ++n;
      }
      tel.sink().flush();
      return {Status::ok, "exported " + std::to_string(n) + " live flows"};
    }
    if (sub == "sink") {
      // telemetry sink mem | telemetry sink jsonl <path>
      if (tok.size() == 3 && tok[2] == "mem") {
        tel.set_sink(std::make_unique<telemetry::MemorySink>());
        return {Status::ok, tel.sink().describe()};
      }
      if (tok.size() == 4 && tok[2] == "jsonl") {
        auto sink = std::make_unique<telemetry::JsonlFileSink>(tok[3]);
        if (!sink->ok())
          return {Status::invalid_argument, "cannot open " + tok[3]};
        tel.set_sink(std::move(sink));
        return {Status::ok, tel.sink().describe()};
      }
      return usage("telemetry sink <mem | jsonl <path>>");
    }
    if (sub == "metrics") {
      // telemetry metrics -> every counter plugins registered (docs §8).
      if (tok.size() != 2) return usage("telemetry metrics");
      std::string text = telemetry::metrics().report();
      if (!text.empty() && text.back() == '\n') text.pop_back();
      return {Status::ok, text.empty() ? "no metrics registered" : text};
    }
    if (sub == "reset") {
      // Clears histograms/traces/sample counters AND the core counters so a
      // measurement window is consistent across both surfaces.
      if (tok.size() != 2) return usage("telemetry reset");
      tel.reset();
      lib_.kernel().core().reset_counters();
      return {Status::ok, "telemetry reset"};
    }
    return {Status::invalid_argument,
            "unknown telemetry subcommand: " + sub +
                "; expected hist|trace|sample|export|sink|metrics|reset"};
  }
  if (cmd == "resilience") {
    auto& res = lib_.kernel().resilience();
    // resilience | resilience status -> containment/breaker overview.
    if (tok.size() == 1 || (tok.size() == 2 && tok[1] == "status")) {
      const auto& cfg = res.breaker_config();
      std::string text =
          "faults: total=" + std::to_string(res.faults_total()) +
          " injected=" + std::to_string(res.faults_injected());
      for (std::size_t k = 0; k < resilience::kFaultKinds; ++k) {
        auto kind = static_cast<resilience::FaultKind>(k);
        text += " " + std::string(resilience::to_string(kind)) + "=" +
                std::to_string(res.fault_kind_total(kind));
      }
      text += "\nbreakers: opens=" + std::to_string(res.breaker_opens()) +
              " bypassed=" + std::to_string(res.bypassed_total()) +
              " fallback_drops=" + std::to_string(res.fallback_drops()) +
              " flows_rebound=" + std::to_string(res.flows_rebound()) +
              " guards=" + std::to_string(res.guard_count()) +
              "\nbudget: window=" + std::to_string(cfg.window) +
              " max_faults=" + std::to_string(cfg.max_faults) +
              " cooldown=" + std::to_string(cfg.cooldown) +
              " probes=" + std::to_string(cfg.probes) +
              (res.armed() ? "\ninjection: armed" : "\ninjection: disarmed");
      res.for_each_guard([&](const resilience::InstanceGuard& g) {
        text += "\n  " +
                (g.inst->owner() ? g.inst->owner()->name() : std::string("?")) +
                "#" + std::to_string(g.inst->id()) + ": " +
                std::string(resilience::to_string(g.breaker.state)) +
                " faults=" + std::to_string(g.faults) +
                " bypassed=" + std::to_string(g.bypassed) +
                " opens=" + std::to_string(g.breaker.opens);
      });
      return {Status::ok, text};
    }
    const std::string& sub = tok[1];
    if (sub == "events") {
      // resilience events [n] -> the n most recent recorded faults.
      std::uint32_t n = 8;
      if (tok.size() > 3 || (tok.size() == 3 && !parse_u32(tok[2], n)))
        return usage("resilience events [n]");
      const auto& evs = res.events();
      if (n > evs.size()) n = static_cast<std::uint32_t>(evs.size());
      std::string text;
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto& ev = evs[evs.size() - 1 - i];  // newest first
        if (!text.empty()) text += "\n";
        text += "[" + std::string(plugin::to_string(ev.gate)) + "] " +
                std::string(resilience::to_string(ev.kind)) + " " + ev.plugin +
                "#" + std::to_string(ev.instance) +
                (ev.injected ? " (injected)" : "");
        if (ev.cycles) text += " cycles=" + std::to_string(ev.cycles);
        if (!ev.detail.empty()) text += " \"" + ev.detail + "\"";
      }
      return {Status::ok, text.empty() ? "no faults recorded" : text};
    }
    if (sub == "budget") {
      // resilience budget                                   -> show
      // resilience budget <window> <max_faults> <cooldown> <probes>
      // resilience budget cycles <gate> <N|off>             -> cycle budget
      if (tok.size() == 2) {
        const auto& cfg = res.breaker_config();
        std::string text = "window=" + std::to_string(cfg.window) +
                           " max_faults=" + std::to_string(cfg.max_faults) +
                           " cooldown=" + std::to_string(cfg.cooldown) +
                           " probes=" + std::to_string(cfg.probes) +
                           "\ncycles:";
        for (std::uint16_t t = 1; t < aiu::kNumGates; ++t) {
          auto type = static_cast<plugin::PluginType>(t);
          text += " " + std::string(plugin::to_string(type)) + "=";
          const auto b = res.cycle_budget(type);
          text += b ? std::to_string(b) : std::string("off");
        }
        return {Status::ok, text};
      }
      if (tok[2] == "cycles") {
        plugin::PluginType gate;
        std::uint64_t n = 0;
        if (tok.size() != 5 || !parse_gate(tok[3], gate) ||
            (tok[4] != "off" && !parse_u64(tok[4], n)))
          return usage("resilience budget cycles <gate> <N|off>");
        res.set_cycle_budget(gate, n);
        return {Status::ok, std::string(plugin::to_string(gate)) +
                                " cycle budget " +
                                (n ? std::to_string(n) : std::string("off"))};
      }
      std::uint32_t w, f, c, p;
      if (tok.size() != 6 || !parse_u32(tok[2], w) || !parse_u32(tok[3], f) ||
          !parse_u32(tok[4], c) || !parse_u32(tok[5], p) || w == 0 || f == 0 ||
          c == 0 || p == 0)
        return usage(
            "resilience budget [<window> <max_faults> <cooldown> <probes> | "
            "cycles <gate> <N|off>]");
      res.breaker_config() = {w, f, c, p};
      return {Status::ok, "error budget: " + std::to_string(f) + " faults per " +
                              std::to_string(w) + " calls"};
    }
    if (sub == "trip" || sub == "reset") {
      // resilience trip <plugin> <id> | resilience reset <plugin> <id> | all
      if (sub == "reset" && tok.size() == 3 && tok[2] == "all") {
        res.reset_all();
        return {Status::ok, "all breakers closed, counters cleared"};
      }
      std::uint32_t id;
      if (tok.size() != 4 || !parse_u32(tok[3], id))
        return usage(sub == "trip" ? "resilience trip <plugin> <id>"
                                   : "resilience reset <plugin> <id> | all");
      auto* inst = lib_.kernel().pcu().find_instance(tok[2], id);
      if (!inst)
        return {Status::not_found, "no instance " + tok[2] + "#" + tok[3]};
      if (sub == "trip") {
        res.trip(*inst);
        return {Status::ok, tok[2] + "#" + tok[3] + " tripped (open)"};
      }
      res.reset(*inst);
      return {Status::ok, tok[2] + "#" + tok[3] + " reset (closed)"};
    }
    if (sub == "fallback") {
      // resilience fallback                 -> show matrix
      // resilience fallback <gate> <policy>
      if (tok.size() == 2) {
        std::string text;
        for (std::uint16_t t = 1; t < aiu::kNumGates; ++t) {
          auto type = static_cast<plugin::PluginType>(t);
          if (!text.empty()) text += " ";
          text += std::string(plugin::to_string(type)) + "=" +
                  std::string(resilience::to_string(res.fallback(type)));
        }
        return {Status::ok, text};
      }
      plugin::PluginType gate;
      resilience::Fallback f;
      if (tok.size() != 4 || !parse_gate(tok[2], gate) ||
          !parse_fallback(tok[3], f))
        return usage(
            "resilience fallback [<gate> <fail_open|fail_closed|best_effort>]");
      res.set_fallback(gate, f);
      return {Status::ok, std::string(plugin::to_string(gate)) + " falls back " +
                              std::string(resilience::to_string(f))};
    }
    if (sub == "inject") {
      // resilience inject off
      // resilience inject seed <n>
      // resilience inject <gate> <kind> every <N>
      // resilience inject <gate> <kind> prob <p>
      // resilience inject <gate> <kind> off
      if (tok.size() == 3 && tok[2] == "off") {
        res.clear_injection();
        return {Status::ok, "injection disarmed"};
      }
      if (tok.size() == 4 && tok[2] == "seed") {
        std::uint64_t seed;
        if (!parse_u64(tok[3], seed))
          return usage("resilience inject seed <n>");
        res.reseed_injection(seed);
        return {Status::ok, "injector reseeded"};
      }
      plugin::PluginType gate;
      resilience::FaultKind kind;
      if (tok.size() >= 4 && parse_gate(tok[2], gate) &&
          parse_fault_kind(tok[3], kind)) {
        if (tok.size() == 5 && tok[4] == "off") {
          res.set_injection(gate, kind, {});
          return {Status::ok, "rule cleared"};
        }
        if (tok.size() == 6 && tok[4] == "every") {
          std::uint32_t n;
          if (!parse_u32(tok[5], n) || n == 0)
            return usage("resilience inject <gate> <kind> every <N>");
          res.set_injection(gate, kind, {.every = n});
          return {Status::ok,
                  "inject " + std::string(resilience::to_string(kind)) +
                      " at " + std::string(plugin::to_string(gate)) +
                      " every " + std::to_string(n)};
        }
        if (tok.size() == 6 && tok[4] == "prob") {
          double p;
          if (!parse_f64(tok[5], p) || p <= 0.0 || p > 1.0)
            return usage("resilience inject <gate> <kind> prob <0<p<=1>");
          res.set_injection(gate, kind, {.probability = p});
          return {Status::ok,
                  "inject " + std::string(resilience::to_string(kind)) +
                      " at " + std::string(plugin::to_string(gate)) +
                      " prob " + tok[5]};
        }
      }
      return usage(
          "resilience inject <off | seed <n> | <gate> <kind> "
          "<every <N> | prob <p> | off>>");
    }
    return {Status::invalid_argument,
            "unknown resilience subcommand: " + sub +
                "; expected status|events|budget|trip|reset|fallback|inject"};
  }
  if (cmd == "shard") {
    // Operator views over the N-worker datapath. Reads come in two grades:
    // `status` copies each worker's lock-free snapshot (slightly stale, never
    // blocks traffic); everything else aggregates exactly via gather(), which
    // runs on each worker thread at a burst boundary.
    if (!sharded_)
      return {Status::not_found, "no sharded datapath attached"};
    auto& dp = *sharded_;
    if (tok.size() == 1 || (tok.size() == 2 && tok[1] == "status")) {
      std::string text = "workers=" + std::to_string(dp.workers()) +
                         " submitted=" + std::to_string(dp.submitted());
      for (const auto& s : dp.status_all())
        text += "\n  shard" + std::to_string(s.shard_id) +
                ": processed=" + std::to_string(s.packets_processed) +
                " bursts=" + std::to_string(s.bursts) +
                " forwarded=" + std::to_string(s.counters.forwarded) +
                " drops=" + std::to_string(s.counters.total_drops()) +
                " flows=" + std::to_string(s.flows_active) +
                " samples=" + std::to_string(s.telemetry_samples) +
                " faults=" + std::to_string(s.faults_total);
      return {Status::ok, text};
    }
    const std::string& sub = tok[1];
    if (sub == "counters") {
      if (tok.size() != 2) return usage("shard counters");
      dp.quiesce();
      const auto cc = dp.aggregate_counters();
      std::string text =
          "received=" + std::to_string(cc.received) +
          " forwarded=" + std::to_string(cc.forwarded) +
          " gate_calls=" + std::to_string(cc.gate_calls) +
          " bursts=" + std::to_string(cc.bursts) +
          "\ndrops: total=" + std::to_string(cc.total_drops());
      for (std::size_t r = 1;
           r < static_cast<std::size_t>(core::DropReason::kCount); ++r)
        if (cc.drops[r])
          text += " " +
                  std::string(core::to_string(static_cast<core::DropReason>(r))) +
                  "=" + std::to_string(cc.drops[r]);
      text += "\ngate-batch: groups=" + std::to_string(cc.gate_groups) +
              " group_pkts=" + std::to_string(cc.gate_group_pkts) +
              " fused_bursts=" + std::to_string(cc.fused_bursts);
      const auto nt = dp.aggregate_nic_counters();
      text += "\nnics: rx=" + std::to_string(nt.rx_packets) +
              " rx_drops=" + std::to_string(nt.rx_drops) +
              " tx=" + std::to_string(nt.tx_packets);
      text += "\n" + format_sanitize(cc);
      return {Status::ok, text};
    }
    if (sub == "telemetry") {
      // One router-wide view merged from the per-worker telemetry state.
      if (tok.size() != 2) return usage("shard telemetry");
      struct PerShard {
        telemetry::LatencyHistogram pipeline;
        std::uint64_t samples, flows_exported, traces;
      };
      std::vector<PerShard> per(dp.workers());
      dp.gather([&per](parallel::ShardContext& ctx) {
        auto& tel = ctx.telemetry();
        per[ctx.id()] = {tel.pipeline_hist(), tel.samples(),
                         tel.flows_exported(), tel.traces().captured()};
      });
      telemetry::LatencyHistogram merged;
      std::uint64_t samples = 0, flows = 0, traces = 0;
      for (const auto& p : per) {
        merged.merge(p.pipeline);
        samples += p.samples;
        flows += p.flows_exported;
        traces += p.traces;
      }
      std::string text = "samples=" + std::to_string(samples) +
                         " traces=" + std::to_string(traces) +
                         " flow-exports=" + std::to_string(flows) +
                         "\npipeline: " + merged.to_string();
      if (!text.empty() && text.back() == '\n') text.pop_back();
      return {Status::ok, text};
    }
    if (sub == "resilience") {
      if (tok.size() != 2) return usage("shard resilience");
      struct PerShard {
        std::uint64_t faults, injected, opens, bypassed, drops, rebound;
      };
      std::vector<PerShard> per(dp.workers());
      dp.gather([&per](parallel::ShardContext& ctx) {
        auto& r = ctx.resilience();
        per[ctx.id()] = {r.faults_total(),    r.faults_injected(),
                         r.breaker_opens(),   r.bypassed_total(),
                         r.fallback_drops(),  r.flows_rebound()};
      });
      PerShard sum{};
      for (const auto& p : per) {
        sum.faults += p.faults;
        sum.injected += p.injected;
        sum.opens += p.opens;
        sum.bypassed += p.bypassed;
        sum.drops += p.drops;
        sum.rebound += p.rebound;
      }
      std::string text =
          "faults: total=" + std::to_string(sum.faults) +
          " injected=" + std::to_string(sum.injected) +
          "\nbreakers: opens=" + std::to_string(sum.opens) +
          " bypassed=" + std::to_string(sum.bypassed) +
          " fallback_drops=" + std::to_string(sum.drops) +
          " flows_rebound=" + std::to_string(sum.rebound);
      for (std::uint32_t i = 0; i < dp.workers(); ++i)
        text += "\n  shard" + std::to_string(i) +
                ": faults=" + std::to_string(per[i].faults) +
                " opens=" + std::to_string(per[i].opens);
      return {Status::ok, text};
    }
    if (sub == "reset") {
      // Counter + telemetry reset on every shard, applied at each worker's
      // next burst boundary — the quiesce hook, safe mid-traffic.
      if (tok.size() != 2) return usage("shard reset");
      dp.gather([](parallel::ShardContext& ctx) {
        ctx.core().reset_counters();
        ctx.telemetry().reset();
      });
      return {Status::ok, "all shards reset"};
    }
    if (sub == "sweep") {
      std::uint64_t cutoff;
      if (tok.size() != 3 || !parse_u64(tok[2], cutoff))
        return usage("shard sweep <ns>");
      dp.sweep_flows(static_cast<netbase::SimTime>(cutoff));
      return {Status::ok, "swept flows idle since " + tok[2]};
    }
    if (sub == "io") {
      // Per-queue I/O backend view: backend name, queue depths/occupancy,
      // backpressure waits, RETA migrations (multiq), plus the synthesized
      // ring stats in steered mode.
      if (tok.size() != 2) return usage("shard io");
      const bool multiq = dp.backend() != nullptr;
      std::string text =
          std::string("backend=") + (multiq ? "memq" : "steered") +
          " queues=" + std::to_string(dp.workers()) +
          " migrations=" + std::to_string(dp.migrations());
      for (std::uint32_t q = 0; q < dp.workers(); ++q) {
        const auto s = dp.queue_stats(q);
        text += "\n  q" + std::to_string(q) +
                ": enq=" + std::to_string(s.rx_enqueued) +
                " drained=" + std::to_string(s.rx_drained) +
                " drops=" + std::to_string(s.rx_drops) +
                " waits=" + std::to_string(s.rx_waits);
        if (s.occupancy_samples)
          text += " avg_occ=" +
                  std::to_string(s.occupancy_sum / s.occupancy_samples);
        if (s.migrations_in || s.migrations_out)
          text += " mig_in=" + std::to_string(s.migrations_in) +
                  " mig_out=" + std::to_string(s.migrations_out);
      }
      return {Status::ok, text};
    }
    return {Status::invalid_argument,
            "unknown shard subcommand: " + sub +
                "; expected status|counters|telemetry|resilience|reset|"
                "sweep|io"};
  }
  if (cmd == "sanitize") {
    auto& core = lib_.kernel().core();
    // sanitize -> per-check ingress-sanitization counters.
    if (tok.size() == 1) {
      std::string text = format_sanitize(core.counters());
      text += std::string("\nstate: ") + (core.config().sanitize ? "on" : "off");
      return {Status::ok, text};
    }
    // sanitize on|off -> toggle the gate (off exists to measure its cost;
    // the flow-key parser still fails closed on malformed lengths).
    if (tok.size() == 2 && (tok[1] == "on" || tok[1] == "off")) {
      core.config().sanitize = tok[1] == "on";
      return {Status::ok, "sanitize " + tok[1]};
    }
    return usage("sanitize [on|off]");
  }
  if (cmd == "l7") {
    // Operator surface of the stateful L7 inspection gate. status/verdicts/
    // budget/reset broadcast to every instance of every l7-type plugin;
    // `rules` targets one (plugin, instance) pair. With a sharded datapath
    // attached, every subcommand also reaches each shard's private
    // instances via the quiesce-safe gather hook — rules included, since
    // those are the instances that actually see traffic.
    const std::string sub = tok.size() > 1 ? tok[1] : "status";
    auto broadcast = [](plugin::PluginControlUnit& pcu, const std::string& name,
                        const plugin::Config& args, std::string& text) {
      for (const auto& pname : pcu.plugin_names(plugin::PluginType::l7)) {
        plugin::Plugin* pl = pcu.find(pname);
        if (!pl) continue;
        for (auto& [id, inst] : *pl) {
          plugin::PluginMsg msg;
          msg.plugin_name = pname;
          msg.instance = id;
          msg.custom_name = name;
          msg.args = args;
          plugin::PluginReply reply;
          if (inst->handle_message(msg, reply) != Status::ok) continue;
          if (!text.empty()) text += "\n";
          text += pname + "#" + std::to_string(id) + ": " + reply.text;
        }
      }
    };
    if (sub == "status" || sub == "verdicts" || sub == "reset" ||
        sub == "budget") {
      plugin::Config args;
      if (sub == "budget") args = parse_kv(tok, 2);
      std::string text;
      broadcast(lib_.kernel().pcu(), sub, args, text);
      if (sharded_) {
        std::vector<std::string> per(sharded_->workers());
        sharded_->gather([&](parallel::ShardContext& ctx) {
          broadcast(ctx.pcu(), sub, args, per[ctx.id()]);
        });
        for (std::uint32_t i = 0; i < sharded_->workers(); ++i)
          if (!per[i].empty())
            text += (text.empty() ? "" : "\n") + ("shard" + std::to_string(i)) +
                    ":\n" + per[i];
      }
      return {Status::ok, text.empty() ? "no l7 instances" : text};
    }
    if (sub == "rules") {
      // l7 rules <plugin> <id> [list | clear | add <pats> | set <pats>]
      // Patterns are comma-separated with \xNN escapes (see l7ids docs).
      const char* u = "l7 rules <plugin> <id> [list|clear|add <patterns>|set "
                      "<patterns>]";
      if (tok.size() < 4) return usage(u);
      std::uint32_t id;
      if (!parse_u32(tok[3], id)) return usage(u);
      const std::string op = tok.size() > 4 ? tok[4] : "list";
      plugin::Config args;
      args.set("op", op);
      if (op == "add" || op == "set") {
        if (tok.size() != 6) return usage(u);
        args.set("patterns", tok[5]);
      } else if (tok.size() != 5 && tok.size() != 4) {
        return usage(u);
      }
      auto reply = lib_.message(tok[2], id, "rules", args);
      if (!sharded_) return {reply.status, reply.text};
      // Mirror the mutation (or listing) onto each shard's private
      // instance of the same (plugin, id); the per-shard generation bump
      // makes the automaton rebuild safe mid-traffic. The command succeeds
      // if any instance — main or shard — answered.
      std::string text = reply.status == Status::ok ? reply.text : "";
      bool any = reply.status == Status::ok;
      std::vector<std::string> per(sharded_->workers());
      sharded_->gather([&](parallel::ShardContext& ctx) {
        plugin::Plugin* pl = ctx.pcu().find(tok[2]);
        plugin::PluginInstance* inst = pl ? pl->instance(id) : nullptr;
        if (!inst) return;
        plugin::PluginMsg msg;
        msg.plugin_name = tok[2];
        msg.instance = id;
        msg.custom_name = "rules";
        msg.args = args;
        plugin::PluginReply r;
        if (inst->handle_message(msg, r) == Status::ok) per[ctx.id()] = r.text;
      });
      for (std::uint32_t i = 0; i < sharded_->workers(); ++i) {
        if (per[i].empty()) continue;
        any = true;
        text += (text.empty() ? "" : "\n") + ("shard" + std::to_string(i)) +
                ": " + per[i];
      }
      if (!any) return {reply.status, reply.text};
      return {Status::ok, text};
    }
    return {Status::invalid_argument,
            "unknown l7 subcommand: " + sub +
                "; expected status|rules|verdicts|budget|reset"};
  }
  if (cmd == "route") {
    if (tok.size() == 4 && tok[1] == "add") {
      pkt::IfIndex iface;
      if (!parse_iface(tok[3], iface)) return usage("route add <prefix> <iface>");
      return {lib_.add_route(tok[2], iface), ""};
    }
    return usage("route add <prefix> <iface>");
  }
  if (cmd == "ctrl") {
    // Live control plane (docs/control_plane.md): batched route updates,
    // batched filter churn and versioned plugin upgrades. Each command is
    // one atomic reconfiguration, applied to the kernel stack and — with a
    // sharded datapath attached — mirrored onto every shard's private stack
    // at its next burst boundary via the quiesce-safe gather hook.
    ctrl_.attach_sharded(sharded_);
    const std::string sub = tok.size() > 1 ? tok[1] : "status";
    if (sub == "status") {
      if (tok.size() > 2) return usage("ctrl status");
      return {Status::ok, ctrl_.status_text()};
    }
    if (sub == "route-batch") {
      const char* u =
          "ctrl route-batch (add <prefix> <iface> | withdraw <prefix>)...";
      std::vector<route::RouteOp> ops;
      std::size_t i = 2;
      while (i < tok.size()) {
        route::RouteOp op;
        if (tok[i] == "add") {
          pkt::IfIndex iface;
          if (i + 2 >= tok.size() || !parse_iface(tok[i + 2], iface))
            return usage(u);
          auto p = netbase::IpPrefix::parse(tok[i + 1]);
          if (!p) return {Status::invalid_argument, "bad prefix " + tok[i + 1]};
          op.kind = route::RouteOp::Kind::add;
          op.prefix = *p;
          op.hop = route::NextHop{iface, {}};
          i += 3;
        } else if (tok[i] == "withdraw") {
          if (i + 1 >= tok.size()) return usage(u);
          auto p = netbase::IpPrefix::parse(tok[i + 1]);
          if (!p) return {Status::invalid_argument, "bad prefix " + tok[i + 1]};
          op.kind = route::RouteOp::Kind::withdraw;
          op.prefix = *p;
          i += 2;
        } else {
          return usage(u);
        }
        ops.push_back(op);
      }
      if (ops.empty()) return usage(u);
      auto res = ctrl_.apply_route_batch(ops);
      return {res.failed == 0 ? Status::ok : Status::invalid_argument,
              "added=" + std::to_string(res.added) +
                  " updated=" + std::to_string(res.updated) +
                  " withdrawn=" + std::to_string(res.withdrawn) +
                  " failed=" + std::to_string(res.failed)};
    }
    if (sub == "filter-batch") {
      // Filter fields are comma-separated inside the value — the pmgr
      // convention for values with spaces — e.g. add=10.0.0.0/8,*,TCP,*,80,*
      const char* u =
          "ctrl filter-batch <plugin> <id> (add=<filter>|remove=<filter>)...";
      if (tok.size() < 5) return usage(u);
      std::uint32_t id;
      if (!parse_u32(tok[3], id)) return usage(u);
      std::vector<ctrl::FilterSpecOp> ops;
      ops.reserve(tok.size() - 4);
      for (std::size_t i = 4; i < tok.size(); ++i) {
        const std::size_t eq = tok[i].find('=');
        if (eq == std::string::npos) return usage(u);
        const std::string_view key = std::string_view(tok[i]).substr(0, eq);
        ctrl::FilterSpecOp op;
        if (key == "add")
          op.kind = aiu::Aiu::FilterOp::Kind::add;
        else if (key == "remove")
          op.kind = aiu::Aiu::FilterOp::Kind::remove;
        else
          return usage(u);
        auto f = aiu::Filter::parse(std::string_view(tok[i]).substr(eq + 1));
        if (!f) return {Status::invalid_argument, "bad filter in " + tok[i]};
        op.plugin = tok[2];
        op.instance = id;
        op.filter = *f;
        ops.push_back(std::move(op));
      }
      std::string detail;
      Status s = ctrl_.apply_filter_batch(ops, &detail);
      return {s, detail};
    }
    if (sub == "upgrade") {
      const char* u = "ctrl upgrade <plugin> <old-id> <new-id> [retire]";
      if (tok.size() != 5 && tok.size() != 6) return usage(u);
      std::uint32_t from, to;
      if (!parse_u32(tok[3], from) || !parse_u32(tok[4], to)) return usage(u);
      bool retire = false;
      if (tok.size() == 6) {
        if (tok[5] != "retire") return usage(u);
        retire = true;
      }
      std::string detail;
      Status s = ctrl_.upgrade(tok[2], from, to, retire, &detail);
      if (s != Status::ok) return {s, "upgrade failed"};
      return {s, detail};
    }
    return {Status::invalid_argument,
            "unknown ctrl subcommand: " + sub +
                "; expected route-batch|filter-batch|upgrade|status"};
  }
  if (cmd == "sched") {
    // Operator surface of the scheduling gate. Each subcommand broadcasts a
    // plugin message to every instance of every sched-type plugin (and,
    // with a sharded datapath attached, to each shard's private instances
    // via the quiesce-safe gather hook):
    //   sched status     per-instance queue/backlog/drop counters ("stats")
    //   sched ranks      rank-function configuration (Eiffel: rank fn,
    //                    granularity, horizon, window base, virtual clock)
    //   sched occupancy  bucket occupancy / active-flow counts (Eiffel)
    // Engines that do not implement a message simply skip it (DRR and
    // H-FSC answer status; ranks/occupancy are Eiffel-specific).
    const std::string sub = tok.size() > 1 ? tok[1] : "status";
    if (sub != "status" && sub != "ranks" && sub != "occupancy")
      return usage("sched [status|ranks|occupancy]");
    if (tok.size() > 2) return usage("sched [status|ranks|occupancy]");
    const std::string mname = sub == "status" ? "stats" : sub;
    auto broadcast = [&mname](plugin::PluginControlUnit& pcu,
                              std::string& text) {
      for (const auto& pname :
           pcu.plugin_names(plugin::PluginType::sched)) {
        plugin::Plugin* pl = pcu.find(pname);
        if (!pl) continue;
        for (auto& [id, inst] : *pl) {
          plugin::PluginMsg msg;
          msg.plugin_name = pname;
          msg.instance = id;
          msg.custom_name = mname;
          plugin::PluginReply reply;
          if (inst->handle_message(msg, reply) != Status::ok) continue;
          if (!text.empty()) text += "\n";
          text += pname + "#" + std::to_string(id) + ": " + reply.text;
        }
      }
    };
    std::string text;
    broadcast(lib_.kernel().pcu(), text);
    if (sharded_) {
      std::vector<std::string> per(sharded_->workers());
      sharded_->gather([&](parallel::ShardContext& ctx) {
        broadcast(ctx.pcu(), per[ctx.id()]);
      });
      for (std::uint32_t i = 0; i < sharded_->workers(); ++i)
        if (!per[i].empty())
          text += (text.empty() ? "" : "\n") + ("shard" + std::to_string(i)) +
                  ":\n" + per[i];
    }
    return {Status::ok, text.empty() ? "no sched instances" : text};
  }
  return {Status::invalid_argument, "unknown command: " + cmd};
}

PluginManager::Result PluginManager::run_script(std::string_view script,
                                                bool keep_going) {
  Result last;
  std::size_t pos = 0;
  while (pos <= script.size()) {
    std::size_t nl = script.find('\n', pos);
    std::string_view line = script.substr(
        pos, nl == std::string_view::npos ? nl : nl - pos);
    if (!line.empty()) {
      Result r = exec(line);
      if (!r.ok()) {
        if (!keep_going) {
          r.text = "at \"" + std::string(line) + "\": " + r.text;
          return r;
        }
      }
      last = std::move(r);
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return last;
}

}  // namespace rp::mgmt

#include "mgmt/rsvp.hpp"

namespace rp::mgmt {

aiu::Filter RsvpDaemon::filter_for(const RsvpSession& s,
                                   const RsvpSender& snd) {
  aiu::Filter f;
  f.src = netbase::IpPrefix(snd.src, snd.src.width());
  f.dst = netbase::IpPrefix(s.dst, s.dst.width());
  f.proto = aiu::ProtoSpec::exact(s.proto);
  f.sport = snd.sport ? aiu::PortSpec::exact(snd.sport) : aiu::PortSpec::any();
  f.dport = aiu::PortSpec::exact(s.dport);
  return f;
}

Status RsvpDaemon::path(const RsvpSession& s, const RsvpSender& snd,
                        const TSpec& tspec, netbase::SimTime now) {
  if (tspec.rate_bps == 0) return Status::invalid_argument;
  auto& st = paths_[{s, snd}];
  st.tspec = tspec;
  st.expires = now + lifetime();
  return Status::ok;
}

Status RsvpDaemon::install(const Key& k, ResvState& st) {
  plugin::Config args;
  auto f = filter_for(k.first, k.second);
  args.set("filter", f.to_string());
  args.set("weight", std::to_string(st.weight));
  auto reply =
      lib_.message(cfg_.sched_plugin, cfg_.sched_instance, "setweight", args);
  if (reply.status != Status::ok) return reply.status;
  return lib_.bind(cfg_.sched_plugin, cfg_.sched_instance, f.to_string());
}

void RsvpDaemon::uninstall(const Key& k) {
  auto spec = filter_for(k.first, k.second).to_string();
  lib_.unbind(cfg_.sched_plugin, cfg_.sched_instance, spec);
  // Return the flow to the best-effort weight (the "dynamically
  // recalculated for reserved flows" bookkeeping of §6.1, in reverse).
  plugin::Config args;
  args.set("filter", spec);
  args.set("weight", "1");
  lib_.message(cfg_.sched_plugin, cfg_.sched_instance, "setweight", args);
}

Status RsvpDaemon::resv(const RsvpSession& s, const RsvpSender& snd,
                        std::uint64_t rate_bps, netbase::SimTime now) {
  Key k{s, snd};
  auto pit = paths_.find(k);
  if (pit == paths_.end()) return Status::not_found;  // no PATH state
  // Admission: a receiver cannot reserve more than the sender's TSpec.
  if (rate_bps == 0 || rate_bps > pit->second.tspec.rate_bps)
    return Status::resource_limit;

  auto [it, inserted] = resvs_.try_emplace(k);
  ResvState& st = it->second;
  const bool rate_changed = st.rate_bps != rate_bps;
  st.rate_bps = rate_bps;
  st.expires = now + lifetime();
  if (inserted || rate_changed) {
    st.weight = static_cast<std::uint32_t>(
        (rate_bps + cfg_.weight_unit_bps - 1) / cfg_.weight_unit_bps);
    if (st.weight == 0) st.weight = 1;
    Status rc = install(k, st);
    if (rc != Status::ok) {
      resvs_.erase(it);
      return rc;
    }
  }
  return Status::ok;
}

Status RsvpDaemon::path_tear(const RsvpSession& s, const RsvpSender& snd) {
  Key k{s, snd};
  if (paths_.erase(k) == 0) return Status::not_found;
  // PATHTEAR also kills dependent reservations (RFC 2205 §3.1.5).
  if (resvs_.erase(k)) uninstall(k);
  return Status::ok;
}

Status RsvpDaemon::resv_tear(const RsvpSession& s, const RsvpSender& snd) {
  Key k{s, snd};
  if (resvs_.erase(k) == 0) return Status::not_found;
  uninstall(k);
  return Status::ok;
}

std::size_t RsvpDaemon::tick(netbase::SimTime now) {
  std::size_t removed = 0;
  for (auto it = resvs_.begin(); it != resvs_.end();) {
    if (it->second.expires <= now) {
      uninstall(it->first);
      it = resvs_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  for (auto it = paths_.begin(); it != paths_.end();) {
    if (it->second.expires <= now) {
      // Expiring path state orphans any surviving reservation.
      if (resvs_.erase(it->first)) {
        uninstall(it->first);
        ++removed;
      }
      it = paths_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace rp::mgmt

// One-call registration of every built-in plugin module with the loader
// registry — the equivalent of installing all the .o modules where modload
// can find them. Idempotent.
#pragma once

namespace rp::mgmt {

void register_builtin_modules();

}  // namespace rp::mgmt

// pmgr — the Plugin Manager (Section 3.1): "a simple application which
// takes arguments from the command line and translates them into calls to
// the user-space Router Plugin Library".
//
// Commands (one per exec() call; a '#' line is a comment):
//   modload <module>                    load a plugin module
//   modunload <module>                  unload it (quiesces data path refs)
//   lsmod                               list loadable/loaded modules
//   create <plugin> [k=v ...]           create an instance -> prints its id
//   free <plugin> <id>                  free an instance
//   bind <plugin> <id> <filter spec>    bind instance to a flow filter
//   unbind <plugin> <id> <filter spec>  remove the binding
//   msg <plugin> <id|-> <name> [k=v...] plugin-specific message
//   attach <plugin> <id> <iface>        make a scheduler the port discipline
//   route add <prefix> <iface>          add a route
//   aiu                                 classifier/flow-cache statistics
//   telemetry                           observability summary (drops by name)
//   telemetry hist [gate]               pipeline / per-gate cycle histogram
//   telemetry trace [n]                 n most recent sampled path traces
//   telemetry sample <N|off>            instrument 1-in-N packets
//   telemetry export                    flow-export snapshot of live flows
//   telemetry sink <mem|jsonl <path>>   choose the flow-record sink
//   telemetry metrics                   plugin-registered counters (docs §8)
//   telemetry reset                     clear histograms/traces/core counters
//   shard [status]                      per-shard snapshots (lock-free reads)
//   shard counters                      exact aggregate core counters (gather)
//   shard telemetry                     merged per-worker histograms + samples
//   shard resilience                    summed per-worker fault/breaker totals
//   shard reset                         reset counters+telemetry on all shards
//   shard sweep <ns>                    expire idle flows on every shard
//   (shard commands need a ShardedDatapath attached via attach_sharded)
//   ctrl route-batch (add <prefix> <iface> | withdraw <prefix>)...
//                                       one atomic batched route update
//   ctrl filter-batch <plugin> <id> (add=<filter>|remove=<filter>)...
//                                       batched filter churn (DAG patching)
//   ctrl upgrade <plugin> <old> <new> [retire]
//                                       zero-loss instance hot-swap
//   ctrl status                         control-plane counters
//   (ctrl commands mirror onto every shard when a datapath is attached)
//   For k=v values containing spaces (e.g. filter=<a, b, ...>) use commas
//   instead of spaces inside the value.
//
// `run_script` executes a newline-separated configuration script, the way
// the paper configures the router at boot.
#pragma once

#include <string>
#include <string_view>

#include "ctrl/control_plane.hpp"
#include "mgmt/rplib.hpp"

namespace rp::parallel {
class ShardedDatapath;
}

namespace rp::mgmt {

class PluginManager {
 public:
  struct Result {
    Status status{Status::ok};
    std::string text;
    bool ok() const noexcept { return status == Status::ok; }
  };

  explicit PluginManager(RouterPluginLib& lib)
      : lib_(lib), ctrl_(lib.kernel()) {}

  // Points the `shard` command family at a running sharded datapath. The
  // lib's kernel stays the control-plane template; the datapath is where
  // traffic actually flows. Null detaches.
  void attach_sharded(parallel::ShardedDatapath* dp) noexcept {
    sharded_ = dp;
  }

  Result exec(std::string_view command);
  // Executes line by line; stops at the first failure unless keep_going.
  Result run_script(std::string_view script, bool keep_going = false);

  // The live control plane behind the `ctrl` family; exposed so embedders
  // (tests, benches) can drive batches programmatically with the same
  // object — and the same cumulative stats — the commands use.
  ctrl::ControlPlane& control() noexcept { return ctrl_; }

 private:
  RouterPluginLib& lib_;
  parallel::ShardedDatapath* sharded_{nullptr};
  ctrl::ControlPlane ctrl_;
};

}  // namespace rp::mgmt

#include "mgmt/firewall_plugin.hpp"

namespace rp::mgmt {

void register_firewall_plugins() {
  plugin::PluginLoader::register_module(
      "firewall", [] { return std::make_unique<FirewallPlugin>(); });
}

}  // namespace rp::mgmt

// SSP daemon (Section 3.1) — the State Setup Protocol, "a simplified
// version of RSVP" the paper's system ships with. It manages reservation
// state: a sender announces a session (PATH), a receiver requests a
// reservation (RESV), and the daemon translates the reservation into
// kernel state through the Router Plugin Library — a filter bound to the
// DRR scheduler instance plus a queue weight proportional to the requested
// rate. Teardown removes the binding.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "mgmt/rplib.hpp"

namespace rp::mgmt {

class SspDaemon {
 public:
  // `sched_plugin`/`sched_instance` identify the scheduler that enforces
  // reservations (a weighted DRR instance in the paper's demo setup).
  // `weight_unit_bps` is the bandwidth represented by weight 1.
  SspDaemon(RouterPluginLib& lib, std::string sched_plugin,
            plugin::InstanceId sched_instance,
            std::uint64_t weight_unit_bps = 1'000'000)
      : lib_(lib),
        sched_plugin_(std::move(sched_plugin)),
        sched_instance_(sched_instance),
        weight_unit_bps_(weight_unit_bps) {}

  // PATH: announce a session's flow (no kernel state yet).
  Status path(std::uint32_t session, const std::string& filter_spec);

  // RESV: reserve `rate_bps` for the session — installs the filter binding
  // and sets the DRR weight.
  Status resv(std::uint32_t session, std::uint64_t rate_bps);

  // Remove all kernel state for the session.
  Status teardown(std::uint32_t session);

  struct Session {
    std::string filter_spec;
    std::uint64_t rate_bps{0};
    std::uint32_t weight{0};
    bool reserved{false};
  };

  const Session* session(std::uint32_t id) const {
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : &it->second;
  }
  std::size_t session_count() const noexcept { return sessions_.size(); }

 private:
  RouterPluginLib& lib_;
  std::string sched_plugin_;
  plugin::InstanceId sched_instance_;
  std::uint64_t weight_unit_bps_;
  std::map<std::uint32_t, Session> sessions_;
};

}  // namespace rp::mgmt

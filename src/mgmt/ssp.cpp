#include "mgmt/ssp.hpp"

#include "aiu/filter.hpp"

namespace rp::mgmt {

Status SspDaemon::path(std::uint32_t session, const std::string& filter_spec) {
  if (!aiu::Filter::parse(filter_spec)) return Status::invalid_argument;
  auto [it, inserted] = sessions_.try_emplace(session);
  if (!inserted && it->second.reserved) return Status::already_exists;
  it->second.filter_spec = filter_spec;
  return Status::ok;
}

Status SspDaemon::resv(std::uint32_t session, std::uint64_t rate_bps) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::not_found;  // no PATH state
  Session& s = it->second;

  // Weight proportional to the requested rate, at least 1.
  std::uint32_t weight = static_cast<std::uint32_t>(
      (rate_bps + weight_unit_bps_ - 1) / weight_unit_bps_);
  if (weight == 0) weight = 1;

  // Spaces inside k=v message values are not representable on the pmgr
  // command path, so normalize the spec (Filter round-trips without spaces).
  auto f = aiu::Filter::parse(s.filter_spec);
  if (!f) return Status::invalid_argument;

  plugin::Config args;
  args.set("filter", f->to_string());
  args.set("weight", std::to_string(weight));
  auto reply = lib_.message(sched_plugin_, sched_instance_, "setweight", args);
  if (reply.status != Status::ok) return reply.status;

  if (Status st = lib_.bind(sched_plugin_, sched_instance_, s.filter_spec);
      st != Status::ok)
    return st;

  s.rate_bps = rate_bps;
  s.weight = weight;
  s.reserved = true;
  return Status::ok;
}

Status SspDaemon::teardown(std::uint32_t session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::not_found;
  if (it->second.reserved) {
    lib_.unbind(sched_plugin_, sched_instance_, it->second.filter_spec);
    // Return the flow to the best-effort weight.
    if (auto f = aiu::Filter::parse(it->second.filter_spec)) {
      plugin::Config args;
      args.set("filter", f->to_string());
      args.set("weight", "1");
      lib_.message(sched_plugin_, sched_instance_, "setweight", args);
    }
  }
  sessions_.erase(it);
  return Status::ok;
}

}  // namespace rp::mgmt

// Router Plugin Library (Section 3.1): the user-space library that the
// Plugin Manager and the daemons (SSP, RSVP, routed) link against. In the
// paper it speaks to the kernel over a dedicated plugin socket; here the
// PluginSocket is an in-process message channel with the same message set
// and synchronous replies.
#pragma once

#include <string>

#include "core/router.hpp"
#include "plugin/message.hpp"

namespace rp::mgmt {

using netbase::Status;

// The "plugin socket": carries PluginMsg requests into the kernel's PCU and
// returns the reply, preserving the paper's control-path shape (user space
// -> socket -> PCU -> plugin callback).
class PluginSocket {
 public:
  explicit PluginSocket(plugin::PluginControlUnit& pcu) : pcu_(pcu) {}

  plugin::PluginReply send(const plugin::PluginMsg& msg) {
    ++messages_sent_;
    return pcu_.dispatch(msg);
  }

  std::uint64_t messages_sent() const noexcept { return messages_sent_; }

 private:
  plugin::PluginControlUnit& pcu_;
  std::uint64_t messages_sent_{0};
};

class RouterPluginLib {
 public:
  explicit RouterPluginLib(core::RouterKernel& kernel)
      : kernel_(kernel), sock_(kernel.pcu()) {}

  core::RouterKernel& kernel() noexcept { return kernel_; }
  PluginSocket& socket() noexcept { return sock_; }

  // -- module lifecycle (modload / modunload) --
  Status modload(const std::string& module) {
    return kernel_.loader().load(module);
  }
  Status modunload(const std::string& module) {
    return kernel_.loader().unload(module);
  }

  // -- standardized plugin messages --
  Status create_instance(const std::string& plugin, const plugin::Config& cfg,
                         plugin::InstanceId& out);
  Status free_instance(const std::string& plugin, plugin::InstanceId id);
  Status bind(const std::string& plugin, plugin::InstanceId id,
              const std::string& filter_spec);
  Status unbind(const std::string& plugin, plugin::InstanceId id,
                const std::string& filter_spec);
  plugin::PluginReply message(const std::string& plugin,
                              plugin::InstanceId id, const std::string& name,
                              plugin::Config args = {});

  // -- kernel plumbing the paper's configuration scripts do --

  // Makes a scheduler instance the discipline of an output port.
  Status attach_scheduler(const std::string& plugin, plugin::InstanceId id,
                          pkt::IfIndex iface);
  Status add_route(const std::string& prefix, pkt::IfIndex iface);

 private:
  core::RouterKernel& kernel_;
  PluginSocket sock_;
};

}  // namespace rp::mgmt

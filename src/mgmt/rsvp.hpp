// RSVP daemon (RFC 2205 subset) — the paper's system shipped SSP and was
// "currently in the process of porting an RSVP implementation"; this is
// that daemon, scoped to the pieces that interact with the router plugins:
//
//  * PATH state per (session, sender): sender template <src, sport> and
//    TSpec (rate/burst), installed by periodic PATH messages;
//  * RESV state with fixed-filter (FF) style per-sender reservations,
//    installed by RESV messages — each reservation becomes a filter bound
//    to the packet-scheduling plugin plus a DRR weight, exactly the kernel
//    state SSP programs;
//  * soft state: every state block carries a lifetime (K * refresh period);
//    `tick(now)` expires stale state and removes the kernel bindings, so a
//    dead receiver's reservation evaporates without explicit teardown;
//  * PATHTEAR / RESVTEAR for explicit teardown.
//
// The daemon drives the kernel exclusively through the Router Plugin
// Library, as in Figure 2 of the paper.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "aiu/filter.hpp"
#include "mgmt/rplib.hpp"
#include "netbase/clock.hpp"

namespace rp::mgmt {

struct RsvpSession {
  netbase::IpAddr dst{};
  std::uint8_t proto{static_cast<std::uint8_t>(pkt::IpProto::udp)};
  std::uint16_t dport{0};

  friend bool operator<(const RsvpSession& a, const RsvpSession& b) {
    if (!(a.dst.v == b.dst.v)) return a.dst.v < b.dst.v;
    if (a.proto != b.proto) return a.proto < b.proto;
    return a.dport < b.dport;
  }
};

struct RsvpSender {
  netbase::IpAddr src{};
  std::uint16_t sport{0};

  friend bool operator<(const RsvpSender& a, const RsvpSender& b) {
    if (!(a.src.v == b.src.v)) return a.src.v < b.src.v;
    return a.sport < b.sport;
  }
};

struct TSpec {
  std::uint64_t rate_bps{0};
  std::uint32_t burst_bytes{0};
};

class RsvpDaemon {
 public:
  struct Config {
    std::string sched_plugin{"drr"};
    plugin::InstanceId sched_instance{1};
    std::uint64_t weight_unit_bps{1'000'000};
    netbase::SimTime refresh_period{30 * netbase::kNsPerSec};  // RFC default
    int lifetime_refreshes{3};  // K: state survives K missed refreshes
  };

  RsvpDaemon(RouterPluginLib& lib, Config cfg)
      : lib_(lib), cfg_(std::move(cfg)) {}

  // -- message handling (what the wire protocol engine would call) --

  // PATH: sender announcement; creates/refreshes path state.
  Status path(const RsvpSession& s, const RsvpSender& snd, const TSpec& tspec,
              netbase::SimTime now);
  // RESV (FF style): receiver reserves `rate_bps` for one sender. Requires
  // matching path state. Creates/refreshes resv state and installs/updates
  // the kernel filter + weight.
  Status resv(const RsvpSession& s, const RsvpSender& snd,
              std::uint64_t rate_bps, netbase::SimTime now);
  Status path_tear(const RsvpSession& s, const RsvpSender& snd);
  Status resv_tear(const RsvpSession& s, const RsvpSender& snd);

  // Soft-state maintenance: expires path/resv state whose cleanup timer
  // (lifetime_refreshes * refresh_period) has lapsed; removes kernel state
  // for expired reservations. Returns the number of state blocks removed.
  std::size_t tick(netbase::SimTime now);

  // -- introspection --
  std::size_t path_count() const noexcept { return paths_.size(); }
  std::size_t resv_count() const noexcept { return resvs_.size(); }
  bool has_resv(const RsvpSession& s, const RsvpSender& snd) const {
    return resvs_.contains({s, snd});
  }

  // The six-tuple filter an FF reservation installs.
  static aiu::Filter filter_for(const RsvpSession& s, const RsvpSender& snd);

 private:
  using Key = std::pair<RsvpSession, RsvpSender>;

  struct PathState {
    TSpec tspec{};
    netbase::SimTime expires{0};
  };
  struct ResvState {
    std::uint64_t rate_bps{0};
    std::uint32_t weight{0};
    netbase::SimTime expires{0};
  };

  netbase::SimTime lifetime() const {
    return cfg_.lifetime_refreshes * cfg_.refresh_period;
  }
  Status install(const Key& k, ResvState& st);
  void uninstall(const Key& k);

  RouterPluginLib& lib_;
  Config cfg_;
  std::map<Key, PathState> paths_;
  std::map<Key, ResvState> resvs_;
};

}  // namespace rp::mgmt

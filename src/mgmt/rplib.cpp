#include "mgmt/rplib.hpp"

#include "core/scheduler_base.hpp"

namespace rp::mgmt {

Status RouterPluginLib::create_instance(const std::string& plugin,
                                        const plugin::Config& cfg,
                                        plugin::InstanceId& out) {
  plugin::PluginMsg msg;
  msg.kind = plugin::PluginMsg::Kind::create_instance;
  msg.plugin_name = plugin;
  msg.args = cfg;
  auto reply = sock_.send(msg);
  out = reply.instance;
  return reply.status;
}

Status RouterPluginLib::free_instance(const std::string& plugin,
                                      plugin::InstanceId id) {
  plugin::PluginMsg msg;
  msg.kind = plugin::PluginMsg::Kind::free_instance;
  msg.plugin_name = plugin;
  msg.instance = id;
  return sock_.send(msg).status;
}

Status RouterPluginLib::bind(const std::string& plugin, plugin::InstanceId id,
                             const std::string& filter_spec) {
  plugin::PluginMsg msg;
  msg.kind = plugin::PluginMsg::Kind::register_instance;
  msg.plugin_name = plugin;
  msg.instance = id;
  msg.filter_spec = filter_spec;
  return sock_.send(msg).status;
}

Status RouterPluginLib::unbind(const std::string& plugin,
                               plugin::InstanceId id,
                               const std::string& filter_spec) {
  plugin::PluginMsg msg;
  msg.kind = plugin::PluginMsg::Kind::deregister_instance;
  msg.plugin_name = plugin;
  msg.instance = id;
  msg.filter_spec = filter_spec;
  return sock_.send(msg).status;
}

plugin::PluginReply RouterPluginLib::message(const std::string& plugin,
                                             plugin::InstanceId id,
                                             const std::string& name,
                                             plugin::Config args) {
  plugin::PluginMsg msg;
  msg.kind = plugin::PluginMsg::Kind::custom;
  msg.plugin_name = plugin;
  msg.instance = id;
  msg.custom_name = name;
  msg.args = std::move(args);
  return sock_.send(msg);
}

Status RouterPluginLib::attach_scheduler(const std::string& plugin,
                                         plugin::InstanceId id,
                                         pkt::IfIndex iface) {
  plugin::PluginInstance* inst = kernel_.pcu().find_instance(plugin, id);
  if (!inst) return Status::not_found;
  auto* sched = dynamic_cast<core::OutputScheduler*>(inst);
  if (!sched) return Status::invalid_argument;
  if (!kernel_.interfaces().by_index(iface)) return Status::not_found;
  kernel_.core().set_port_scheduler(iface, sched);
  return Status::ok;
}

Status RouterPluginLib::add_route(const std::string& prefix,
                                  pkt::IfIndex iface) {
  auto p = netbase::IpPrefix::parse(prefix);
  if (!p) return Status::invalid_argument;
  if (!kernel_.interfaces().by_index(iface)) return Status::not_found;
  return kernel_.routes().add(*p, route::NextHop{iface, {}});
}

}  // namespace rp::mgmt

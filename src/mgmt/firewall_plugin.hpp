// Firewall plugin — the paper's firewall/ALG application: "it is very
// important to be able to quickly and efficiently classify packets into
// flows, and to apply different policies to different flows". An instance
// is a policy (accept or deny); the AIU's filters select which flows it
// applies to, so the classifier does all the matching work and the plugin
// is a counter plus a verdict.
#pragma once

#include <memory>

#include "plugin/loader.hpp"
#include "plugin/plugin.hpp"

namespace rp::mgmt {

class FirewallInstance final : public plugin::PluginInstance {
 public:
  explicit FirewallInstance(bool permit) : permit_(permit) {}

  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    ++hits_;
    return permit_ ? plugin::Verdict::cont : plugin::Verdict::drop;
  }

  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override {
    if (msg.custom_name == "stats") {
      reply.text = std::string(permit_ ? "permit" : "deny") +
                   " hits=" + std::to_string(hits_);
      return netbase::Status::ok;
    }
    return netbase::Status::unsupported;
  }

  std::uint64_t hits() const noexcept { return hits_; }
  bool permit() const noexcept { return permit_; }

 private:
  bool permit_;
  std::uint64_t hits_{0};
};

class FirewallPlugin final : public plugin::Plugin {
 public:
  FirewallPlugin() : Plugin("firewall", plugin::PluginType::firewall) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override {
    auto policy = cfg.get_or("policy", "");
    if (policy == "permit") return std::make_unique<FirewallInstance>(true);
    if (policy == "deny") return std::make_unique<FirewallInstance>(false);
    return nullptr;
  }
};

void register_firewall_plugins();

}  // namespace rp::mgmt

// Log2-bucketed latency histogram. Bucket k counts samples in
// [2^(k-1), 2^k) cycles (bucket 0 is the value 0), so one record is a
// count-leading-zeros plus two increments — cheap enough to sit inside the
// sampled gate-dispatch path. Fixed storage, no allocation.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace rp::telemetry {

struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 40;  // up to ~2^39 cycles

  std::uint64_t counts[kBuckets]{};
  std::uint64_t samples{0};
  std::uint64_t total{0};
  std::uint64_t max{0};

  static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    const std::size_t b = 64 - static_cast<std::size_t>(std::countl_zero(v | 1));
    return v == 0 ? 0 : (b < kBuckets ? b : kBuckets - 1);
  }
  // Lower bound of bucket b (inclusive).
  static constexpr std::uint64_t bucket_floor(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  void record(std::uint64_t v) noexcept {
    ++counts[bucket_of(v)];
    ++samples;
    total += v;
    if (v > max) max = v;
  }

  double mean() const noexcept {
    return samples ? static_cast<double>(total) / static_cast<double>(samples)
                   : 0.0;
  }

  // Upper bound of the bucket containing the q-quantile sample (q in [0,1]) —
  // the usual log2-histogram approximation of p50/p99.
  std::uint64_t quantile(double q) const noexcept {
    if (!samples) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * samples);
    if (rank >= samples) rank = samples - 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen > rank) return b + 1 < kBuckets ? bucket_floor(b + 1) - 1 : max;
    }
    return max;
  }

  void reset() noexcept { *this = LatencyHistogram{}; }

  // Fold another histogram in (bucket-wise sum) — how the sharded datapath
  // presents one router-wide latency distribution from per-worker histograms.
  void merge(const LatencyHistogram& o) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) counts[b] += o.counts[b];
    samples += o.samples;
    total += o.total;
    if (o.max > max) max = o.max;
  }

  // One line per non-empty bucket: "[lo,hi) count".
  std::string to_string() const {
    std::string out = "samples=" + std::to_string(samples) +
                      " mean=" + std::to_string(static_cast<std::uint64_t>(mean())) +
                      " p50<=" + std::to_string(quantile(0.50)) +
                      " p99<=" + std::to_string(quantile(0.99)) +
                      " max=" + std::to_string(max) + "\n";
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (!counts[b]) continue;
      const std::uint64_t lo = bucket_floor(b);
      const std::uint64_t hi = b + 1 < kBuckets ? bucket_floor(b + 1) : max + 1;
      out += "  [" + std::to_string(lo) + "," + std::to_string(hi) + ") " +
             std::to_string(counts[b]) + "\n";
    }
    return out;
  }
};

}  // namespace rp::telemetry

// Sampled path tracing: for 1-in-N packets the core records the full gate
// sequence — which plugin ran at each gate, its verdict, and its cycle cost —
// plus the flow key and the packet's final disposition. Records live in a
// fixed ring that is allocated once; capturing a trace is a pointer bump and
// a handful of stores, never an allocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/clock.hpp"
#include "pkt/flow_key.hpp"
#include "plugin/code.hpp"

namespace rp::telemetry {

struct TraceStep {
  plugin::PluginType gate{plugin::PluginType::none};
  std::uint8_t verdict{0};  // plugin::Verdict
  std::uint32_t cycles{0};  // clipped to 32 bits; a gate never runs that long
};

enum class Disposition : std::uint8_t {
  in_flight = 0,  // trace started but never finalized (packet mid-pipeline)
  queued,         // handed to the output stage (scheduler or port FIFO)
  consumed,       // a plugin took ownership
  dropped,
};

constexpr const char* to_string(Disposition d) noexcept {
  switch (d) {
    case Disposition::in_flight: return "in-flight";
    case Disposition::queued: return "queued";
    case Disposition::consumed: return "consumed";
    case Disposition::dropped: return "dropped";
  }
  return "?";
}

struct TraceRecord {
  static constexpr std::size_t kMaxSteps = 12;

  std::uint64_t seq{0};  // monotone sample number (ring position proxy)
  netbase::SimTime arrival{0};
  pkt::FlowKey key{};
  pkt::IfIndex in_iface{0};
  pkt::IfIndex out_iface{pkt::kAnyIface};
  Disposition disposition{Disposition::in_flight};
  std::uint8_t drop_reason{0};  // core::DropReason when dropped
  std::uint8_t n_steps{0};
  TraceStep steps[kMaxSteps]{};
  std::uint64_t total_cycles{0};

  void add_step(plugin::PluginType gate, std::uint8_t verdict,
                std::uint64_t cyc) noexcept {
    if (n_steps >= kMaxSteps) return;
    steps[n_steps++] = {gate, verdict,
                        cyc > 0xffffffffULL
                            ? 0xffffffffU
                            : static_cast<std::uint32_t>(cyc)};
  }
};

// A default-constructed record to copy from when recycling ring slots.
// (An lvalue: assigning a braced TraceRecord temporary trips gcc 12 — a
// rejected `r = {}` in one spot and an ICE in another.)
inline const TraceRecord kEmptyTraceRecord{};

// Fixed-capacity overwrite-oldest ring of trace records.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : ring_(capacity ? capacity : 1) {}

  TraceRecord* begin_record() noexcept {
    TraceRecord& r = ring_[next_ % ring_.size()];
    r = kEmptyTraceRecord;
    r.seq = next_++;
    return &r;
  }

  std::size_t capacity() const noexcept { return ring_.size(); }
  std::uint64_t captured() const noexcept { return next_; }
  std::size_t stored() const noexcept {
    return next_ < ring_.size() ? static_cast<std::size_t>(next_)
                                : ring_.size();
  }
  // i = 0 is the most recent record, i = stored()-1 the oldest retained.
  const TraceRecord& recent(std::size_t i) const noexcept {
    return ring_[(next_ - 1 - i) % ring_.size()];
  }

  void reset() noexcept {
    next_ = 0;
    for (auto& r : ring_) r = kEmptyTraceRecord;
  }

 private:
  std::vector<TraceRecord> ring_;
  std::uint64_t next_{0};
};

}  // namespace rp::telemetry

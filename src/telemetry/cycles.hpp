// Cheap cycle counter for data-path instrumentation. The paper measures
// per-packet cost with the Pentium cycle counter; telemetry does the same —
// a raw TSC read (~20 cycles, no serialization) on x86, the virtual counter
// on aarch64, and a steady_clock fallback elsewhere. Values are only ever
// differenced over short spans and bucketed into log2 histograms, so neither
// TSC/core-clock ratio nor cross-core skew matters here.
#pragma once

#include <cstdint>

#if !defined(__x86_64__) && !defined(__i386__) && !defined(__aarch64__)
#include <chrono>
#endif

namespace rp::telemetry {

inline std::uint64_t cycles() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

}  // namespace rp::telemetry

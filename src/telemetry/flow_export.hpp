// Flow-record export — the NetFlow-v5 idea on top of the AIU's flow cache:
// every flow-table entry already accumulates packets/bytes/first/last, so
// when the entry dies (idle expiry, LRU recycling, explicit removal) the
// router emits an accounting record through a pluggable sink. Sinks are
// control-path objects; the only data-path cost is the byte accumulation the
// AIU does on an already-hot cache line.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "netbase/clock.hpp"
#include "pkt/flow_key.hpp"

namespace rp::telemetry {

// Why the record was emitted (superset of the flow table's removal causes).
enum class ExportReason : std::uint8_t {
  expired = 0,   // idle timeout sweep
  recycled,      // LRU eviction at the record cap
  removed,       // explicit removal
  purged,        // instance/filter teardown removed the flow
  cleared,       // table flush (reconfiguration, shutdown)
  on_demand,     // operator snapshot of a still-live flow
};

constexpr const char* to_string(ExportReason r) noexcept {
  switch (r) {
    case ExportReason::expired: return "expired";
    case ExportReason::recycled: return "recycled";
    case ExportReason::removed: return "removed";
    case ExportReason::purged: return "purged";
    case ExportReason::cleared: return "cleared";
    case ExportReason::on_demand: return "on-demand";
  }
  return "?";
}

// The v5-style record: key + counters + first/last timestamps.
struct FlowExportRecord {
  pkt::FlowKey key{};
  std::uint64_t packets{0};
  std::uint64_t bytes{0};
  netbase::SimTime first_seen{0};
  netbase::SimTime last_seen{0};
  ExportReason reason{ExportReason::expired};

  std::string to_string() const;
  std::string to_json() const;
};

class FlowSink {
 public:
  virtual ~FlowSink() = default;
  virtual void write(const FlowExportRecord& r) = 0;
  virtual void flush() {}
  virtual std::string describe() const = 0;
};

// Keeps the most recent `capacity` records in memory (overwrite-oldest).
class MemorySink final : public FlowSink {
 public:
  explicit MemorySink(std::size_t capacity = 1024)
      : ring_(capacity ? capacity : 1) {}

  void write(const FlowExportRecord& r) override {
    ring_[next_++ % ring_.size()] = r;
  }
  std::string describe() const override;

  std::uint64_t written() const noexcept { return next_; }
  std::size_t stored() const noexcept {
    return next_ < ring_.size() ? static_cast<std::size_t>(next_)
                                : ring_.size();
  }
  // i = 0 is the most recent record.
  const FlowExportRecord& recent(std::size_t i) const noexcept {
    return ring_[(next_ - 1 - i) % ring_.size()];
  }

 private:
  std::vector<FlowExportRecord> ring_;
  std::uint64_t next_{0};
};

// Appends one JSON object per record to a file (JSONL), the standard
// ingestion format for downstream collectors.
class JsonlFileSink final : public FlowSink {
 public:
  // Throws nothing; a failed open leaves the sink inert (written() stays 0,
  // ok() false) so a bad path cannot take down the router.
  explicit JsonlFileSink(std::string path);
  ~JsonlFileSink() override;

  void write(const FlowExportRecord& r) override;
  void flush() override;
  std::string describe() const override;

  bool ok() const noexcept { return f_ != nullptr; }
  std::uint64_t written() const noexcept { return written_; }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::FILE* f_{nullptr};
  std::uint64_t written_{0};
};

}  // namespace rp::telemetry

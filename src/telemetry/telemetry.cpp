#include "telemetry/telemetry.hpp"

namespace rp::telemetry {

MetricRegistry& metrics() {
  static MetricRegistry reg;
  return reg;
}

}  // namespace rp::telemetry

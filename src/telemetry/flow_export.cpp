#include "telemetry/flow_export.hpp"

namespace rp::telemetry {

std::string FlowExportRecord::to_string() const {
  return key.to_string() + " pkts=" + std::to_string(packets) +
         " bytes=" + std::to_string(bytes) +
         " first=" + std::to_string(first_seen) +
         " last=" + std::to_string(last_seen) + " reason=" +
         telemetry::to_string(reason);
}

std::string FlowExportRecord::to_json() const {
  return std::string("{\"flow\":\"") + key.to_string() +
         "\",\"packets\":" + std::to_string(packets) +
         ",\"bytes\":" + std::to_string(bytes) +
         ",\"first_ns\":" + std::to_string(first_seen) +
         ",\"last_ns\":" + std::to_string(last_seen) + ",\"reason\":\"" +
         telemetry::to_string(reason) + "\"}";
}

std::string MemorySink::describe() const {
  return "mem(cap=" + std::to_string(ring_.size()) +
         " written=" + std::to_string(next_) + ")";
}

JsonlFileSink::JsonlFileSink(std::string path) : path_(std::move(path)) {
  f_ = std::fopen(path_.c_str(), "a");
}

JsonlFileSink::~JsonlFileSink() {
  if (f_) std::fclose(f_);
}

void JsonlFileSink::write(const FlowExportRecord& r) {
  if (!f_) return;
  const std::string line = r.to_json();
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
  ++written_;
}

void JsonlFileSink::flush() {
  if (f_) std::fflush(f_);
}

std::string JsonlFileSink::describe() const {
  return "jsonl(path=" + path_ + (f_ ? "" : " UNWRITABLE") +
         " written=" + std::to_string(written_) + ")";
}

}  // namespace rp::telemetry

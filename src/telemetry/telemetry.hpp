// Telemetry — router-wide observability threaded through the datapath:
//
//   * per-gate latency histograms: log2-bucketed cycle counts around each
//     gate dispatch, keyed by plugin::PluginType, plus a whole-pipeline
//     histogram per sampled packet;
//   * sampled path tracing: for 1-in-N packets (N runtime-configurable) the
//     full gate sequence, verdicts, flow key and disposition land in a
//     fixed ring (path_trace.hpp);
//   * flow-record export: NetFlow-v5-style records emitted when flow-table
//     entries die and on operator demand, through a pluggable sink
//     (flow_export.hpp);
//   * a process-wide metric registry plugins can export named counters
//     through (see docs/plugin_authoring.md §8).
//
// Cost model: the *unsampled* hot path pays one counter decrement per packet
// (sample_tick) and nothing else; all timing, tracing, and histogram work
// happens only on the sampled 1-in-N. Define RP_TELEMETRY=0 to compile even
// that out of the core (the types and control-path API stay available so
// nothing else needs to change).
#pragma once

#ifndef RP_TELEMETRY
#define RP_TELEMETRY 1
#endif

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pkt/packet.hpp"
#include "plugin/code.hpp"
#include "telemetry/cycles.hpp"
#include "telemetry/flow_export.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/path_trace.hpp"

namespace rp::telemetry {

// One histogram slot per gate/plugin type (mirrors aiu::kNumGates without
// depending on the AIU), plus slot 0 for the whole pipeline.
constexpr std::size_t kGateSlots = 10;

class Telemetry {
 public:
  struct Options {
    // 1-in-N packets instrumented; 0 = off. 128 keeps the measured burst-path
    // overhead inside the 3% budget (bench_t5_telemetry) while a 256-entry
    // trace ring still turns over every few ms at line rate.
    std::uint32_t sample_every{128};
    std::size_t trace_ring{256};     // trace records retained
    std::size_t memory_sink_cap{1024};
  };

  Telemetry() : Telemetry(Options{}) {}
  explicit Telemetry(Options opt)
      : opt_(opt),
        countdown_(opt.sample_every ? 1 : 0),
        ring_(opt.trace_ring),
        sink_(std::make_unique<MemorySink>(opt.memory_sink_cap)) {}

  // ---- hot path (everything below runs only for sampled packets) ----

  // One decrement per packet; true on the sampled 1-in-N (the first packet
  // after enabling sampling is sampled, so short tests see traces).
  bool sample_tick() noexcept {
    if (countdown_ == 0) return false;  // sampling off
    if (--countdown_ > 0) return false;
    countdown_ = opt_.sample_every;
    return true;
  }

  TraceRecord* trace_begin(const pkt::Packet& p) noexcept {
    TraceRecord* tr = ring_.begin_record();
    tr->arrival = p.arrival;
    tr->key = p.key;
    tr->in_iface = p.in_iface;
    return tr;
  }

  // Records one gate dispatch: histogram keyed by gate type + trace step.
  void record_gate(TraceRecord* tr, plugin::PluginType gate,
                   std::uint8_t verdict, std::uint64_t cyc) noexcept {
    const std::size_t gi = static_cast<std::size_t>(gate);
    gate_hist_[gi < kGateSlots ? gi : 0].record(cyc);
    tr->add_step(gate, verdict, cyc);
  }

  void trace_end(TraceRecord* tr, Disposition d, std::uint8_t drop_reason,
                 pkt::IfIndex out_iface, std::uint64_t total_cyc) noexcept {
    tr->disposition = d;
    tr->drop_reason = drop_reason;
    tr->out_iface = out_iface;
    tr->total_cycles = total_cyc;
    pipeline_hist_.record(total_cyc);
    ++samples_;
  }

  // ---- flow export (control path: eviction/expiry/teardown + on demand) --

  void flow_closed(const FlowExportRecord& r) {
    ++flows_exported_;
    sink_->write(r);
  }

  void set_sink(std::unique_ptr<FlowSink> sink) {
    if (sink) sink_ = std::move(sink);
  }
  FlowSink& sink() noexcept { return *sink_; }

  // ---- configuration / introspection ----

  void set_sample_every(std::uint32_t n) noexcept {
    opt_.sample_every = n;
    countdown_ = n ? 1 : 0;  // 0 disables; otherwise next packet is sampled
  }
  std::uint32_t sample_every() const noexcept { return opt_.sample_every; }

  std::uint64_t samples() const noexcept { return samples_; }
  std::uint64_t flows_exported() const noexcept { return flows_exported_; }

  const LatencyHistogram& gate_hist(plugin::PluginType gate) const noexcept {
    const std::size_t gi = static_cast<std::size_t>(gate);
    return gate_hist_[gi < kGateSlots ? gi : 0];
  }
  const LatencyHistogram& pipeline_hist() const noexcept {
    return pipeline_hist_;
  }
  const TraceRing& traces() const noexcept { return ring_; }

  // Clears histograms, traces, and counters; sink and sampling config stay.
  void reset() noexcept {
    for (auto& h : gate_hist_) h.reset();
    pipeline_hist_.reset();
    ring_.reset();
    samples_ = 0;
    flows_exported_ = 0;
    countdown_ = opt_.sample_every ? 1 : 0;
  }

 private:
  Options opt_;
  std::uint32_t countdown_;
  LatencyHistogram gate_hist_[kGateSlots]{};
  LatencyHistogram pipeline_hist_{};
  TraceRing ring_;
  std::unique_ptr<FlowSink> sink_;
  std::uint64_t samples_{0};
  std::uint64_t flows_exported_{0};
};

// ---------------------------------------------------------------------------
// Metric registry: plugins export named counters by pointer; the CLI reads
// them live (`telemetry metrics`). Registration is control-path only — the
// data path just increments its own counters as it always did. Owners must
// deregister before the counter's storage dies (instance destructor).
// Counters are atomics: with the sharded datapath the registry is read from
// the control thread while worker threads increment, so exported counters
// must be `std::atomic<std::uint64_t>` (relaxed increments keep the data
// path at plain-store cost on x86).
class MetricRegistry {
 public:
  void add(std::string name, const std::atomic<std::uint64_t>* counter,
           const void* owner) {
    std::lock_guard<std::mutex> lk(mu_);
    entries_.push_back({std::move(name), counter, owner});
  }
  void remove_owner(const void* owner) {
    std::lock_guard<std::mutex> lk(mu_);
    std::erase_if(entries_, [owner](const Entry& e) { return e.owner == owner; });
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
  }
  std::string report() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::string out;
    for (const auto& e : entries_)
      out += e.name + "=" +
             std::to_string(e.counter->load(std::memory_order_relaxed)) + "\n";
    return out;
  }

 private:
  struct Entry {
    std::string name;
    const std::atomic<std::uint64_t>* counter;
    const void* owner;
  };
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

// The process-wide registry (plugins have no kernel handle at create time;
// a global mirrors how /proc-style metric surfaces work).
MetricRegistry& metrics();

}  // namespace rp::telemetry

// Eiffel scheduler plugin — O(1) bucketed priority queueing for millions of
// concurrent flows (Saeed et al., "Eiffel: Efficient and Flexible Software
// Packet Scheduling", NSDI'19; ROADMAP "million-flow scheduler" item).
//
// The data structure is a circular FFS (find-first-set) hierarchy: ranks map
// to time/priority buckets, bucket occupancy is summarized in a two-level
// word-of-words bitmap (one l0 word whose bit w says "l1 word w is
// non-empty", each l1 bit says "bucket is non-empty"), so the minimum-rank
// bucket is found with two `countr_zero` instructions regardless of how many
// flows are backlogged. Two bucket rings cover a sliding rank window:
//
//     [base, base+H)      curFIFO ring (serve from here)
//     [base+H, base+2H)   overflow ring
//     [base+2H, ...)      far list, re-bucketed on rotation
//
// When the cur ring drains with backlog remaining, the rings rotate (swap +
// base advance) — the "circular" part: bucket storage is reused forever, the
// rank window slides over it.
//
// One engine expresses several disciplines via *programmable rank functions*
// selected per instance (`create eiffel rank=...`):
//
//   rank=prio      strict priority: rank is a per-flow static priority
//                  (lower = served first), set per filter with `setprio`.
//                  Flows sharing a priority round-robin FIFO-style.
//   rank=vtime     virtual-time fair share: start/finish tags exactly as in
//                  weighted fair queueing, quantized to buckets; byte share
//                  is proportional to `setweight` weights — DRR-equivalent
//                  fairness (the Jain-parity property tests prove it).
//   rank=deadline  H-FSC-style service-curve deadlines: each flow gets a
//                  two-piece curve (m1/d/m2, `setcurve`); the rank is the
//                  curve's y2x deadline of the head packet, reusing the
//                  RuntimeSc machinery from hfsc.cpp. `shaped=1` makes the
//                  instance non-work-conserving: a packet is not released
//                  before its bucket's time (next_wakeup drives the retry).
//
// Per-flow queue pointers live in the flow table's sched-gate soft slot,
// exactly like DRR/H-FSC (§5.2/§6.1); flow-less traffic self-classifies into
// fallback queues that are freed as soon as they drain, so a million-flow
// churn cannot accrete state.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "aiu/filter.hpp"
#include "core/scheduler_base.hpp"
#include "plugin/plugin.hpp"
#include "sched/hfsc.hpp"  // ServiceCurve / RuntimeSc (shared curve math)

namespace rp::sched {

class EiffelInstance final : public core::OutputScheduler {
 public:
  enum class RankFn : std::uint8_t { prio, vtime, deadline };

  struct Config {
    RankFn rank{RankFn::vtime};
    std::size_t horizon{2048};       // buckets per ring; rounded to 64s
    std::uint64_t gran{0};           // rank units per bucket; 0 = default
    std::size_t per_flow_limit{128};  // packets per flow queue
    std::uint32_t default_weight{1};  // vtime
    std::uint32_t default_prio{0};    // prio (0 = highest)
    ServiceCurve default_curve{1.25e7, 0, 1.25e7};  // deadline: 100 Mbit/s
    bool shaped{false};               // deadline only
  };

  explicit EiffelInstance(Config cfg);
  ~EiffelInstance() override;

  bool enqueue(pkt::PacketPtr p, void** flow_soft,
               netbase::SimTime now) override;
  // Batch-native enqueue (PR 6 ABI): one virtual call per run; the flow
  // queue is memoized across a train's back-to-back packets (same slot).
  void enqueue_burst(pkt::PacketPtr* pkts, void** const* softs,
                     bool* accepted, std::size_t n,
                     netbase::SimTime now) override;
  pkt::PacketPtr dequeue(netbase::SimTime now) override;
  bool empty() const override { return backlog_pkts_ == 0; }
  std::size_t backlog_packets() const override { return backlog_pkts_; }
  std::size_t backlog_bytes() const override { return backlog_bytes_; }
  netbase::SimTime next_wakeup(netbase::SimTime now) const override;

  void flow_removed(void* flow_soft) override;

  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

  // -- observability / property-test hooks --
  std::size_t queue_count() const noexcept { return queues_.size(); }
  std::size_t fallback_count() const noexcept { return fallback_.size(); }
  std::uint64_t drops() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t rotations() const noexcept {
    return rotations_.load(std::memory_order_relaxed);
  }

  struct Debug {
    std::uint64_t base{0};        // rank of cur bucket 0
    std::uint64_t vtime{0};       // virtual clock (vtime mode, scaled)
    std::size_t horizon{0};       // buckets per ring
    std::uint64_t gran{0};        // rank units per bucket
    std::size_t cur_occupied{0};  // non-empty buckets, cur ring
    std::size_t ovf_occupied{0};
    std::size_t far{0};           // flows beyond the 2H window
    std::size_t active_flows{0};  // flows holding packets
    std::size_t queues{0};
    std::size_t fallback{0};
  };
  Debug debug() const;

  // Structure invariants. `deep` walks every bucket list (O(H + flows));
  // deep=false checks only the l0<->l1 bitmap coherence (O(H/64) words),
  // cheap enough to run after every operation in the churn soak. Returns
  // false and fills `why` on the first violation.
  bool validate(std::string* why = nullptr, bool deep = true) const;

 private:
  struct FlowQueue;

  struct Bucket {
    FlowQueue* head{nullptr};
    FlowQueue* tail{nullptr};
  };

  // One ring: H buckets + the two-level FFS bitmap over them.
  struct Ring {
    std::uint64_t l0{0};
    std::vector<std::uint64_t> l1;  // horizon/64 words
    std::vector<Bucket> buckets;    // horizon entries
    bool empty() const noexcept { return l0 == 0; }
  };

  enum class Where : std::uint8_t { idle, cur, ovf, far };

  struct FlowQueue {
    std::deque<pkt::PacketPtr> pkts;
    FlowQueue* bprev{nullptr};  // intrusive bucket FIFO links
    FlowQueue* bnext{nullptr};
    std::uint64_t rank{0};      // absolute rank while queued
    Where where{Where::idle};
    bool orphaned{false};       // flow-table entry gone; free once drained
    bool in_fallback{false};
    std::uint32_t weight{1};
    std::uint32_t prio{0};
    std::uint64_t vnext{0};     // finish tag of the last ranked packet
    double cumul{0};            // deadline: bytes ranked so far
    RuntimeSc dcurve{};
    ServiceCurve curve{};
    bool curve_live{false};
    void** soft_slot{nullptr};
    pkt::FlowKey key{};
    std::list<std::unique_ptr<FlowQueue>>::iterator self{};
  };

  struct KeyHash {
    std::size_t operator()(const pkt::FlowKey& k) const noexcept {
      return static_cast<std::size_t>(k.hash());
    }
  };

  // A weight / priority / curve rule (first matching filter wins), the
  // stand-in for SSP/RSVP-driven recalculation exactly as in DRR.
  struct Rule {
    aiu::Filter filter;
    std::uint32_t weight{0};  // 0 = not set by this rule
    std::uint32_t prio{0};
    bool has_prio{false};
    ServiceCurve curve{};
    bool has_curve{false};
  };

  FlowQueue* queue_for(const pkt::Packet& p, void** flow_soft);
  void apply_rules(FlowQueue* q) const;
  void destroy(FlowQueue* q);

  std::uint64_t vlen(std::size_t bytes, std::uint32_t weight) const;
  std::uint64_t rank_for_head(FlowQueue* q, netbase::SimTime now,
                              bool activation);
  void insert(FlowQueue* q, std::uint64_t rank);
  void activate(FlowQueue* q, netbase::SimTime now);
  void rotate();

  void ring_push(Ring& r, std::size_t idx, FlowQueue* q);
  void ring_unlink(Ring& r, std::size_t idx, FlowQueue* q);
  int ring_first(const Ring& r) const;  // bucket index or -1

  Config cfg_;
  std::size_t horizon_;       // buckets per ring (multiple of 64)
  std::uint64_t gran_;        // rank units per bucket
  std::uint64_t base_{0};     // absolute rank of cur bucket 0
  std::uint64_t vtime_{0};    // virtual clock, vtime mode (scaled units)
  Ring cur_, ovf_;
  std::vector<FlowQueue*> far_;
  std::size_t active_flows_{0};

  std::list<std::unique_ptr<FlowQueue>> queues_;
  std::unordered_map<pkt::FlowKey, FlowQueue*, KeyHash> fallback_;
  std::vector<Rule> rules_;

  std::size_t backlog_pkts_{0};
  std::size_t backlog_bytes_{0};

  // Telemetry: registered with telemetry::metrics() under eiffel.<tag>.*.
  std::string metric_prefix_;
  std::atomic<std::uint64_t> enqueues_{0};
  std::atomic<std::uint64_t> dequeues_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> rotations_{0};
  std::atomic<std::uint64_t> bucket_scans_{0};  // bitmap words inspected
  std::atomic<std::uint64_t> far_admits_{0};    // ranks past the 2H window
  std::atomic<std::uint64_t> occupancy_{0};     // backlog_pkts_ mirror
};

class EiffelPlugin final : public plugin::Plugin {
 public:
  EiffelPlugin() : Plugin("eiffel", plugin::PluginType::sched) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override;
};

}  // namespace rp::sched

// Publishes the packet-scheduler plugin modules to the loader registry
// (fifo, drr, hfsc, altq-wfq, red).
#pragma once

#include "plugin/loader.hpp"

namespace rp::sched {

void register_sched_plugins();

}  // namespace rp::sched

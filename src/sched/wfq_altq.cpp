#include "sched/wfq_altq.hpp"

namespace rp::sched {

bool AltqWfqInstance::enqueue(pkt::PacketPtr p, void** /*flow_soft*/,
                              netbase::SimTime /*now*/) {
  std::size_t i = classify(*p);
  Queue& q = queues_[i];
  if (q.pkts.size() >= limit_) {
    ++drops_;
    return false;
  }
  backlog_bytes_ += p->size();
  ++backlog_pkts_;
  q.pkts.push_back(std::move(p));
  if (!q.active) {
    q.active = true;
    q.fresh_visit = true;
    active_.push_back(i);
  }
  return true;
}

pkt::PacketPtr AltqWfqInstance::dequeue(netbase::SimTime /*now*/) {
  while (!active_.empty()) {
    std::size_t i = active_.front();
    Queue& q = queues_[i];
    if (q.fresh_visit) {
      q.deficit += static_cast<std::int64_t>(quantum_);
      q.fresh_visit = false;
    }
    if (!q.pkts.empty() &&
        static_cast<std::int64_t>(q.pkts.front()->size()) <= q.deficit) {
      auto p = std::move(q.pkts.front());
      q.pkts.pop_front();
      q.deficit -= static_cast<std::int64_t>(p->size());
      backlog_bytes_ -= p->size();
      --backlog_pkts_;
      if (q.pkts.empty()) {
        q.deficit = 0;
        q.active = false;
        q.fresh_visit = true;
        active_.pop_front();
      }
      return p;
    }
    q.fresh_visit = true;
    active_.pop_front();
    active_.push_back(i);
  }
  return nullptr;
}

}  // namespace rp::sched

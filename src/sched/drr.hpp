// Weighted Deficit Round Robin scheduler plugin (Section 6.1).
//
// One queue per flow: the per-flow queue pointer lives in the flow table's
// soft-state slot for the scheduling gate, exactly as the paper describes —
// "it was straightforward to add a queue per flow which guarantees perfectly
// fair queuing for all flows". Weights default to 1 for best-effort flows;
// reserved flows get weights via the plugin-specific `setweight` message
// (filter spec -> weight), the stand-in for SSP/RSVP-driven recalculation.
#pragma once

#include <deque>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "aiu/filter.hpp"
#include "core/scheduler_base.hpp"
#include "plugin/plugin.hpp"

namespace rp::sched {

class DrrInstance final : public core::OutputScheduler {
 public:
  struct Config {
    std::size_t quantum{1500};      // bytes per round per unit weight
    std::size_t per_flow_limit{128};  // packets per flow queue
    std::uint32_t default_weight{1};
  };

  explicit DrrInstance(Config cfg) : cfg_(cfg) {}
  ~DrrInstance() override;

  bool enqueue(pkt::PacketPtr p, void** flow_soft,
               netbase::SimTime now) override;
  // Batch-native enqueue: one virtual call per run, with the per-flow queue
  // memoized across a train's back-to-back packets (same soft slot).
  void enqueue_burst(pkt::PacketPtr* pkts, void** const* softs,
                     bool* accepted, std::size_t n,
                     netbase::SimTime now) override;
  pkt::PacketPtr dequeue(netbase::SimTime now) override;
  bool empty() const override { return backlog_pkts_ == 0; }
  std::size_t backlog_packets() const override { return backlog_pkts_; }
  std::size_t backlog_bytes() const override { return backlog_bytes_; }

  void flow_removed(void* flow_soft) override;

  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

  std::size_t queue_count() const noexcept { return queues_.size(); }
  std::uint64_t drops() const noexcept { return drops_; }

 private:
  struct FlowQueue {
    std::deque<pkt::PacketPtr> pkts;
    std::uint32_t weight{1};
    std::int64_t deficit{0};
    bool active{false};        // on the round-robin list
    bool fresh_visit{true};    // gets a quantum when reaching the list head
    bool orphaned{false};      // flow-table entry gone; free once drained
    bool in_fallback{false};   // self-classified (keyed in fallback_)
    void** soft_slot{nullptr}; // so we can clear the slot if we die first
    pkt::FlowKey key{};
    std::list<std::unique_ptr<FlowQueue>>::iterator self{};
  };

  FlowQueue* queue_for(const pkt::Packet& p, void** flow_soft);
  std::uint32_t weight_for(const pkt::FlowKey& key) const;
  void destroy(FlowQueue* q);
  void sweep_fallback();

  struct KeyHash {
    std::size_t operator()(const pkt::FlowKey& k) const noexcept {
      return static_cast<std::size_t>(k.hash());
    }
  };

  Config cfg_;
  std::list<std::unique_ptr<FlowQueue>> queues_;
  std::deque<FlowQueue*> active_;
  // Per-flow queues for traffic without a flow-table soft slot (the
  // port-default path, when the instance is attached to an interface but no
  // filter binds the flow): the plugin classifies by flow key itself, like
  // the ALTQ module did, but with one queue per exact flow.
  std::unordered_map<pkt::FlowKey, FlowQueue*, KeyHash> fallback_;
  std::vector<std::pair<aiu::Filter, std::uint32_t>> weight_rules_;
  std::size_t backlog_pkts_{0};
  std::size_t backlog_bytes_{0};
  std::uint64_t drops_{0};
  // Drained self-classified queues are kept (their deficit-free state is
  // cheap and re-creating them would re-run the weight rules), but a flow
  // churn must not accrete them without bound: once the fallback map grows
  // past this watermark, creating a new entry first sweeps out every
  // drained idle one. The watermark doubles with the surviving (backlogged)
  // population so a fully-active map is not rescanned per packet.
  std::size_t fallback_sweep_at_{4096};
};

class DrrPlugin final : public plugin::Plugin {
 public:
  DrrPlugin() : Plugin("drr", plugin::PluginType::sched) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override {
    DrrInstance::Config c;
    c.quantum = static_cast<std::size_t>(cfg.get_int_or("quantum", 1500));
    c.per_flow_limit =
        static_cast<std::size_t>(cfg.get_int_or("limit", 128));
    c.default_weight =
        static_cast<std::uint32_t>(cfg.get_int_or("weight", 1));
    if (c.quantum == 0) return nullptr;
    return std::make_unique<DrrInstance>(c);
  }
};

}  // namespace rp::sched

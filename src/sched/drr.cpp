#include "sched/drr.hpp"

#include <algorithm>

namespace rp::sched {

using netbase::Status;

DrrInstance::~DrrInstance() {
  // Clear flow-table soft slots that still point at our queues.
  for (auto& q : queues_)
    if (q->soft_slot) *q->soft_slot = nullptr;
}

std::uint32_t DrrInstance::weight_for(const pkt::FlowKey& key) const {
  for (const auto& [filter, w] : weight_rules_)
    if (filter.matches(key)) return w;
  return cfg_.default_weight;
}

DrrInstance::FlowQueue* DrrInstance::queue_for(const pkt::Packet& p,
                                               void** flow_soft) {
  if (flow_soft && *flow_soft) return static_cast<FlowQueue*>(*flow_soft);
  if (!flow_soft) {
    if (auto it = fallback_.find(p.key); it != fallback_.end())
      return it->second;
  }
  auto q = std::make_unique<FlowQueue>();
  q->weight = weight_for(p.key);
  q->soft_slot = flow_soft;
  q->key = p.key;
  FlowQueue* raw = q.get();
  queues_.push_back(std::move(q));
  raw->self = std::prev(queues_.end());
  if (flow_soft) {
    *flow_soft = raw;  // per-flow soft state in the flow record (§5.2)
  } else {
    if (fallback_.size() >= fallback_sweep_at_) sweep_fallback();
    raw->in_fallback = true;
    fallback_[p.key] = raw;  // self-classified per-flow queue
  }
  return raw;
}

void DrrInstance::sweep_fallback() {
  for (auto it = fallback_.begin(); it != fallback_.end();) {
    FlowQueue* q = it->second;
    if (!q->active && q->pkts.empty()) {
      it = fallback_.erase(it);
      queues_.erase(q->self);
    } else {
      ++it;
    }
  }
  fallback_sweep_at_ = std::max<std::size_t>(4096, 2 * fallback_.size());
}

bool DrrInstance::enqueue(pkt::PacketPtr p, void** flow_soft,
                          netbase::SimTime /*now*/) {
  FlowQueue* q = queue_for(*p, flow_soft);
  if (q->pkts.size() >= cfg_.per_flow_limit) {
    ++drops_;
    return false;
  }
  backlog_bytes_ += p->size();
  ++backlog_pkts_;
  q->pkts.push_back(std::move(p));
  if (!q->active) {
    q->active = true;
    q->fresh_visit = true;
    active_.push_back(q);
  }
  return true;
}

void DrrInstance::enqueue_burst(pkt::PacketPtr* pkts, void** const* softs,
                                bool* accepted, std::size_t n,
                                netbase::SimTime /*now*/) {
  // A run shares one flow-table soft slot across its train, so the flow
  // queue resolves once; the fallback path (no slot) still classifies each
  // packet. Per-packet admission is unchanged from enqueue().
  void** memo_soft = nullptr;
  FlowQueue* memo_q = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    pkt::PacketPtr p = std::move(pkts[i]);
    FlowQueue* q;
    if (softs[i] && softs[i] == memo_soft) {
      q = memo_q;
    } else {
      q = queue_for(*p, softs[i]);
      if (softs[i]) {
        memo_soft = softs[i];
        memo_q = q;
      }
    }
    if (q->pkts.size() >= cfg_.per_flow_limit) {
      ++drops_;
      accepted[i] = false;
      p.reset();  // rejected packets are freed, as by-value enqueue() does
      continue;
    }
    backlog_bytes_ += p->size();
    ++backlog_pkts_;
    q->pkts.push_back(std::move(p));
    if (!q->active) {
      q->active = true;
      q->fresh_visit = true;
      active_.push_back(q);
    }
    accepted[i] = true;
  }
}

pkt::PacketPtr DrrInstance::dequeue(netbase::SimTime /*now*/) {
  while (!active_.empty()) {
    FlowQueue* q = active_.front();
    if (q->fresh_visit) {
      q->deficit += static_cast<std::int64_t>(cfg_.quantum) * q->weight;
      q->fresh_visit = false;
    }
    if (!q->pkts.empty() &&
        static_cast<std::int64_t>(q->pkts.front()->size()) <= q->deficit) {
      auto p = std::move(q->pkts.front());
      q->pkts.pop_front();
      q->deficit -= static_cast<std::int64_t>(p->size());
      backlog_bytes_ -= p->size();
      --backlog_pkts_;
      if (q->pkts.empty()) {
        // Shreedhar/Varghese: an emptied queue forfeits its deficit.
        q->deficit = 0;
        q->active = false;
        q->fresh_visit = true;
        active_.pop_front();
        if (q->orphaned) destroy(q);
      }
      return p;
    }
    // Deficit exhausted: move to the back of the round.
    q->fresh_visit = true;
    active_.pop_front();
    active_.push_back(q);
  }
  return nullptr;
}

void DrrInstance::flow_removed(void* flow_soft) {
  auto* q = static_cast<FlowQueue*>(flow_soft);
  if (!q) return;
  q->soft_slot = nullptr;
  if (q->pkts.empty() && !q->active) {
    destroy(q);
  } else {
    q->orphaned = true;  // drain in-flight packets first
  }
}

void DrrInstance::destroy(FlowQueue* q) {
  // Account for any packets thrown away with the queue.
  for (const auto& p : q->pkts) {
    backlog_bytes_ -= p->size();
    --backlog_pkts_;
  }
  if (q->active) std::erase(active_, q);
  if (q->in_fallback) fallback_.erase(q->key);
  queues_.erase(q->self);
}

Status DrrInstance::handle_message(const plugin::PluginMsg& msg,
                                   plugin::PluginReply& reply) {
  if (msg.custom_name == "setweight") {
    auto spec = msg.args.get("filter");
    auto weight = msg.args.get_int("weight");
    if (!spec || !weight || *weight < 1) return Status::invalid_argument;
    auto f = aiu::Filter::parse(*spec);
    if (!f) return Status::invalid_argument;
    for (auto& [filter, w] : weight_rules_) {
      if (filter == *f) {
        w = static_cast<std::uint32_t>(*weight);
        return Status::ok;
      }
    }
    weight_rules_.emplace_back(*f, static_cast<std::uint32_t>(*weight));
    return Status::ok;
  }
  if (msg.custom_name == "stats") {
    reply.text = "queues=" + std::to_string(queues_.size()) +
                 " backlog_pkts=" + std::to_string(backlog_pkts_) +
                 " backlog_bytes=" + std::to_string(backlog_bytes_) +
                 " drops=" + std::to_string(drops_);
    return Status::ok;
  }
  return Status::unsupported;
}

}  // namespace rp::sched

#include "sched/policer.hpp"

#include "pkt/headers.hpp"

namespace rp::sched {

using netbase::Status;
using plugin::Verdict;

PolicerInstance::~PolicerInstance() {
  for (auto& b : buckets_)
    if (b->soft_slot) *b->soft_slot = nullptr;
}

bool PolicerInstance::conforms(Bucket& b, std::size_t bytes,
                               netbase::SimTime now) const {
  if (!b.primed) {
    b.tokens = cfg_.burst_bytes;  // buckets start full
    b.last = now;
    b.primed = true;
  }
  if (now > b.last) {
    b.tokens += static_cast<double>(now - b.last) * cfg_.rate_bps / 8.0 / 1e9;
    if (b.tokens > cfg_.burst_bytes) b.tokens = cfg_.burst_bytes;
    b.last = now;
  }
  if (b.tokens >= static_cast<double>(bytes)) {
    b.tokens -= static_cast<double>(bytes);
    return true;
  }
  return false;
}

PolicerInstance::Bucket* PolicerInstance::bucket_for(void** flow_soft) {
  if (!cfg_.per_flow || !flow_soft) return &shared_;
  if (*flow_soft) return static_cast<Bucket*>(*flow_soft);
  auto owned = std::make_unique<Bucket>();
  owned->soft_slot = flow_soft;
  Bucket* b = owned.get();
  buckets_.push_back(std::move(owned));
  *flow_soft = b;
  return b;
}

void PolicerInstance::remark(pkt::Packet& p) const {
  std::uint8_t* h = p.data();
  if (p.ip_version == netbase::IpVersion::v4) {
    h[1] = static_cast<std::uint8_t>(cfg_.mark_dscp << 2);
    pkt::Ipv4Header::finalize_checksum(
        h, std::size_t{static_cast<std::size_t>(h[0] & 0x0f)} * 4);
  } else {
    // Traffic class straddles bytes 0/1 of the IPv6 header.
    std::uint8_t tc = static_cast<std::uint8_t>(cfg_.mark_dscp << 2);
    h[0] = static_cast<std::uint8_t>((h[0] & 0xf0) | (tc >> 4));
    h[1] = static_cast<std::uint8_t>((h[1] & 0x0f) | (tc << 4));
  }
}

Verdict PolicerInstance::handle_packet(pkt::Packet& p, void** flow_soft) {
  Bucket* b = bucket_for(flow_soft);
  if (conforms(*b, p.size(), p.arrival)) {
    ++conformant_;
    return Verdict::cont;
  }
  ++exceeded_;
  if (cfg_.mark) {
    remark(p);
    return Verdict::cont;
  }
  return Verdict::drop;
}

void PolicerInstance::flow_removed(void* flow_soft) {
  auto* b = static_cast<Bucket*>(flow_soft);
  if (!b) return;
  buckets_.remove_if([b](const auto& up) { return up.get() == b; });
}

Status PolicerInstance::handle_message(const plugin::PluginMsg& msg,
                                       plugin::PluginReply& reply) {
  if (msg.custom_name == "stats") {
    reply.text = "conformant=" + std::to_string(conformant_) +
                 " exceeded=" + std::to_string(exceeded_) +
                 " buckets=" + std::to_string(buckets_.size());
    return Status::ok;
  }
  if (msg.custom_name == "setrate") {
    auto rate = msg.args.get_int("rate_bps");
    if (!rate || *rate <= 0) return Status::invalid_argument;
    cfg_.rate_bps = static_cast<std::uint64_t>(*rate);
    if (auto burst = msg.args.get_int("burst"); burst && *burst > 0)
      cfg_.burst_bytes = static_cast<std::uint32_t>(*burst);
    return Status::ok;
  }
  return Status::unsupported;
}

void register_policer_plugin() {
  plugin::PluginLoader::register_module(
      "policer", [] { return std::make_unique<PolicerPlugin>(); });
}

}  // namespace rp::sched

// FIFO scheduler plugin: the trivial queueing discipline (and the implicit
// discipline of the best-effort baseline). Useful as the default port
// scheduler and as the degenerate case in scheduler comparisons.
#pragma once

#include <deque>
#include <memory>

#include "core/scheduler_base.hpp"
#include "plugin/plugin.hpp"

namespace rp::sched {

class FifoInstance final : public core::OutputScheduler {
 public:
  explicit FifoInstance(std::size_t limit_packets) : limit_(limit_packets) {}

  bool enqueue(pkt::PacketPtr p, void** /*flow_soft*/,
               netbase::SimTime /*now*/) override {
    if (q_.size() >= limit_) {
      ++drops_;
      return false;
    }
    bytes_ += p->size();
    q_.push_back(std::move(p));
    return true;
  }

  pkt::PacketPtr dequeue(netbase::SimTime /*now*/) override {
    if (q_.empty()) return nullptr;
    auto p = std::move(q_.front());
    q_.pop_front();
    bytes_ -= p->size();
    return p;
  }

  bool empty() const override { return q_.empty(); }
  std::size_t backlog_packets() const override { return q_.size(); }
  std::size_t backlog_bytes() const override { return bytes_; }
  std::uint64_t drops() const noexcept { return drops_; }

 private:
  std::deque<pkt::PacketPtr> q_;
  std::size_t limit_;
  std::size_t bytes_{0};
  std::uint64_t drops_{0};
};

class FifoPlugin final : public plugin::Plugin {
 public:
  FifoPlugin() : Plugin("fifo", plugin::PluginType::sched) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override {
    return std::make_unique<FifoInstance>(
        static_cast<std::size_t>(cfg.get_int_or("limit", 1024)));
  }
};

}  // namespace rp::sched

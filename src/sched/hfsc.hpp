// Hierarchical Fair Service Curve scheduler plugin (Section 6; Stoica,
// Zhang & Ng, SIGCOMM '97) — the paper's state-of-the-art class-based
// scheduler, ported from the CMU implementation in the original system.
//
// Faithful structure of the algorithm:
//  * Every class may have a real-time service curve (rsc, leaves only), a
//    link-sharing curve (fsc) and an upper-limit curve (usc). Curves are
//    two-piece linear (m1 for `d` nanoseconds, then m2), which is what
//    decouples delay from bandwidth allocation.
//  * Dequeue first serves the eligible leaf with the smallest deadline
//    (real-time criterion, guarantees the service curves), and only when no
//    leaf is eligible distributes excess bandwidth by descending the
//    hierarchy along minimum-virtual-time active children (link-sharing
//    criterion), respecting upper limits.
//  * Leaves queue packets FIFO by default, as in the original
//    implementation. The paper's planned *Hierarchical Scheduling
//    Framework* (HSF, §6/§8) — "DRR could be used to do fair queuing for
//    all flows ending in the same H-FSC leaf node" — is implemented here as
//    an opt-in per-leaf discipline: `addclass ... qdisc=drr` gives the leaf
//    per-flow DRR queues, restoring fairness among flows that share a leaf.
//
// Classes are configured with the plugin-specific `addclass` message and
// flows are mapped to leaves with `bindclass` (filter -> class); the flow's
// leaf pointer is cached in the scheduling gate's soft-state slot.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "aiu/filter.hpp"
#include "core/scheduler_base.hpp"
#include "plugin/plugin.hpp"

namespace rp::sched {

// Two-piece linear service curve: slope m1 (bytes/sec) for the first d
// nanoseconds after activation, then slope m2.
struct ServiceCurve {
  double m1{0};  // bytes/sec
  double d{0};   // ns
  double m2{0};  // bytes/sec
  bool zero() const noexcept { return m1 == 0 && m2 == 0; }
};

// Runtime service curve anchored at (x, y): time->service mapping used for
// deadlines (y = bytes served), kept as a two-piece curve whose origin
// shifts on reactivation (the rtsc_min operation of the original).
struct RuntimeSc {
  double x{0}, y{0};    // origin: time (ns), cumulative bytes
  double sm1{0};        // bytes per ns
  double dx{0}, dy{0};  // first-segment extent
  double sm2{0};

  void init(const ServiceCurve& sc, double x0, double y0);
  double x2y(double t) const;   // service available by time t
  double y2x(double bytes) const;  // time at which `bytes` is reached
  void min_with(const ServiceCurve& sc, double x0, double y0);
};

class HfscInstance final : public core::OutputScheduler {
 public:
  struct Config {
    double link_rate_bps{155'000'000};
    std::size_t leaf_limit{256};  // packets per leaf FIFO
  };

  explicit HfscInstance(Config cfg);
  ~HfscInstance() override;

  bool enqueue(pkt::PacketPtr p, void** flow_soft,
               netbase::SimTime now) override;
  // Batch-native enqueue: one virtual call per run; the leaf lookup is
  // memoized across a train's back-to-back packets (same soft slot).
  void enqueue_burst(pkt::PacketPtr* pkts, void** const* softs,
                     bool* accepted, std::size_t n,
                     netbase::SimTime now) override;
  pkt::PacketPtr dequeue(netbase::SimTime now) override;
  bool empty() const override { return backlog_pkts_ == 0; }
  std::size_t backlog_packets() const override { return backlog_pkts_; }
  std::size_t backlog_bytes() const override { return backlog_bytes_; }
  netbase::SimTime next_wakeup(netbase::SimTime now) const override;

  void flow_removed(void* flow_soft) override { (void)flow_soft; }

  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

  // Per-leaf queueing discipline (HSF): FIFO (the original) or per-flow DRR.
  enum class LeafQdisc { fifo, drr };

  // -- direct configuration API (what the messages call) --
  netbase::Status add_class(const std::string& name, const std::string& parent,
                            const ServiceCurve& rsc, const ServiceCurve& fsc,
                            const ServiceCurve& usc,
                            LeafQdisc qdisc = LeafQdisc::fifo,
                            std::size_t drr_quantum = 1500);
  netbase::Status bind_class(const aiu::Filter& f, const std::string& cls);

  // Per-class observability for benches/tests.
  struct ClassStats {
    std::string name;
    std::uint64_t bytes_sent{0};
    std::uint64_t pkts_sent{0};
    std::uint64_t drops{0};
    std::size_t backlog{0};
  };
  std::vector<ClassStats> class_stats() const;

  // Total per-flow DRR sub-queues across every leaf (qdisc=drr). Drained
  // sub-queues are erased, so under churn this tracks the *backlogged* flow
  // population, not every flow ever seen (the SchedHandleLifecycle tests
  // pin this down).
  std::size_t subqueue_count() const;

 private:
  struct Class {
    std::string name;
    Class* parent{nullptr};
    std::vector<Class*> children;

    ServiceCurve rsc{}, fsc{}, usc{};
    bool has_rsc{false}, has_fsc{false}, has_usc{false};

    // Real-time state (leaves).
    RuntimeSc deadline{}, eligible{};
    double e{0}, dl{0};       // eligible time, deadline of head packet
    double cumul{0};          // bytes served under the real-time criterion

    // Link-share state.
    RuntimeSc vt_curve{};     // fsc in virtual-time domain
    double vt{0};             // virtual time
    double total{0};          // bytes served (rt + ls) for vt advance
    double cvtmax{0};         // max vt seen among children (reactivation)
    int active_children{0};

    // Upper-limit state.
    RuntimeSc ul_curve{};
    double myf{0};            // fit time: earliest time ul allows service

    // Leaf queue: FIFO by default; per-flow DRR sub-queues with qdisc=drr
    // (the HSF extension).
    LeafQdisc qdisc{LeafQdisc::fifo};
    std::deque<pkt::PacketPtr> q;  // FIFO storage
    struct SubQueue {
      std::deque<pkt::PacketPtr> pkts;
      std::int64_t deficit{0};
      bool active{false};
      bool fresh_visit{true};
      pkt::FlowKey key{};  // map key, so a drained sub-queue can erase itself
    };
    struct KeyHash {
      std::size_t operator()(const pkt::FlowKey& k) const noexcept {
        return static_cast<std::size_t>(k.hash());
      }
    };
    std::unordered_map<pkt::FlowKey, SubQueue, KeyHash> subqs;
    std::deque<SubQueue*> rr;  // active sub-queues, round-robin order
    std::size_t drr_quantum{1500};
    std::size_t backlog{0};  // packets across all storage

    // Discipline-independent leaf queue operations.
    void leaf_enqueue(pkt::PacketPtr p);
    pkt::PacketPtr leaf_dequeue();
    std::size_t leaf_next_len() const;  // size of the next packet out
    bool leaf_empty() const noexcept { return backlog == 0; }

    std::uint64_t bytes_sent{0}, pkts_sent{0}, drops{0};

    bool is_leaf() const noexcept { return children.empty(); }
    bool rt_active{false};
    bool ls_active{false};
  };

  Class* find_class(const std::string& name);
  Class* leaf_for(const pkt::Packet& p, void** flow_soft);
  void set_active(Class* cl, double now, std::size_t first_len);
  void set_passive(Class* cl);
  void update_ed(Class* cl, double now, std::size_t next_len);
  void update_vt(Class* cl, std::size_t len, double now);
  Class* select_realtime(double now);
  Class* select_linkshare(double now);
  pkt::PacketPtr serve(Class* leaf, bool realtime, double now);

  Config cfg_;
  std::vector<std::unique_ptr<Class>> classes_;
  Class* root_;
  std::vector<std::pair<aiu::Filter, Class*>> bindings_;
  Class* default_leaf_{nullptr};
  std::size_t backlog_pkts_{0};
  std::size_t backlog_bytes_{0};
};

class HfscPlugin final : public plugin::Plugin {
 public:
  HfscPlugin() : Plugin("hfsc", plugin::PluginType::sched) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override {
    HfscInstance::Config c;
    c.link_rate_bps =
        static_cast<double>(cfg.get_int_or("bandwidth_bps", 155'000'000));
    c.leaf_limit = static_cast<std::size_t>(cfg.get_int_or("limit", 256));
    if (c.link_rate_bps <= 0) return nullptr;
    return std::make_unique<HfscInstance>(c);
  }
};

}  // namespace rp::sched

#include "sched/hfsc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rp::sched {

using netbase::Status;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-6;
}  // namespace

// ---------------------------------------------------------------------------
// Runtime service curves (the rtsc_* operations of the original).

void RuntimeSc::init(const ServiceCurve& sc, double x0, double y0) {
  x = x0;
  y = y0;
  sm1 = sc.m1 / 1e9;  // bytes/sec -> bytes/ns
  dx = sc.d;
  dy = sm1 * dx;
  sm2 = sc.m2 / 1e9;
}

double RuntimeSc::x2y(double t) const {
  if (t <= x) return y;
  if (t <= x + dx) return y + sm1 * (t - x);
  return y + dy + sm2 * (t - x - dx);
}

double RuntimeSc::y2x(double bytes) const {
  if (bytes <= y) return x;
  const double b = bytes - y;
  if (b <= dy) return sm1 > 0 ? x + b / sm1 : kInf;
  return sm2 > 0 ? x + dx + (b - dy) / sm2 : kInf;
}

void RuntimeSc::min_with(const ServiceCurve& sc, double x0, double y0) {
  RuntimeSc nsc;
  nsc.init(sc, x0, y0);
  if (nsc.sm1 <= nsc.sm2) {
    // Convex (or linear) curve: re-anchor unless the current curve is
    // already below at the new origin.
    if (x2y(x0) < y0) return;
    x = x0;
    y = y0;
    return;
  }
  // Concave curve.
  const double y1 = x2y(x0);
  if (y1 <= y0) return;  // current curve is below: keep it
  const double y2 = x2y(x0 + nsc.dx);
  if (y2 >= y0 + nsc.dy) {  // current above for the whole burst segment
    *this = nsc;
    return;
  }
  // The curves intersect inside the first segment: extend the m1 segment up
  // to the intersection (reverse of seg_x2y, as in the original).
  double ndx = (y1 - y0) / (nsc.sm1 - nsc.sm2);
  if (x + dx > x0) ndx += x + dx - x0;
  x = x0;
  y = y0;
  dx = ndx;
  dy = ndx * nsc.sm1;
  sm1 = nsc.sm1;
  sm2 = nsc.sm2;
}

// ---------------------------------------------------------------------------
// Leaf queueing disciplines (HSF): FIFO or per-flow DRR.

void HfscInstance::Class::leaf_enqueue(pkt::PacketPtr p) {
  ++backlog;
  if (qdisc == LeafQdisc::fifo) {
    q.push_back(std::move(p));
    return;
  }
  SubQueue& sq = subqs[p->key];
  sq.key = p->key;
  sq.pkts.push_back(std::move(p));
  if (!sq.active) {
    sq.active = true;
    sq.fresh_visit = true;
    rr.push_back(&sq);
  }
}

pkt::PacketPtr HfscInstance::Class::leaf_dequeue() {
  if (backlog == 0) return nullptr;
  --backlog;
  if (qdisc == LeafQdisc::fifo) {
    auto p = std::move(q.front());
    q.pop_front();
    return p;
  }
  // One DRR round-robin step across the leaf's flows.
  while (!rr.empty()) {
    SubQueue* sq = rr.front();
    if (sq->fresh_visit) {
      sq->deficit += static_cast<std::int64_t>(drr_quantum);
      sq->fresh_visit = false;
    }
    if (!sq->pkts.empty() &&
        static_cast<std::int64_t>(sq->pkts.front()->size()) <= sq->deficit) {
      auto p = std::move(sq->pkts.front());
      sq->pkts.pop_front();
      sq->deficit -= static_cast<std::int64_t>(p->size());
      if (sq->pkts.empty()) {
        rr.pop_front();
        // A drained flow forfeits its deficit anyway (Shreedhar/Varghese),
        // so nothing of value is lost by erasing the sub-queue outright —
        // and keeping it would leak one map entry per flow ever seen.
        const pkt::FlowKey gone = sq->key;
        subqs.erase(gone);
      }
      return p;
    }
    sq->fresh_visit = true;
    rr.pop_front();
    rr.push_back(sq);
  }
  ++backlog;  // should be unreachable; restore the count
  return nullptr;
}

std::size_t HfscInstance::subqueue_count() const {
  std::size_t n = 0;
  for (const auto& cl : classes_) n += cl->subqs.size();
  return n;
}

std::size_t HfscInstance::Class::leaf_next_len() const {
  if (backlog == 0) return 0;
  if (qdisc == LeafQdisc::fifo) return q.front()->size();
  // Approximate with the head of the next active sub-queue (exact "next
  // out" would require simulating the deficit round; the deadline moves by
  // at most one packet's difference).
  if (!rr.empty() && !rr.front()->pkts.empty())
    return rr.front()->pkts.front()->size();
  for (const auto& [k, sq] : subqs)
    if (!sq.pkts.empty()) return sq.pkts.front()->size();
  return 0;
}

// ---------------------------------------------------------------------------

HfscInstance::HfscInstance(Config cfg) : cfg_(cfg) {
  auto root = std::make_unique<Class>();
  root->name = "root";
  const double link_Bps = cfg_.link_rate_bps / 8.0;
  root->fsc = {link_Bps, 0, link_Bps};
  root->has_fsc = true;
  root_ = root.get();
  classes_.push_back(std::move(root));
}

HfscInstance::~HfscInstance() = default;

HfscInstance::Class* HfscInstance::find_class(const std::string& name) {
  for (auto& c : classes_)
    if (c->name == name) return c.get();
  return nullptr;
}

Status HfscInstance::add_class(const std::string& name,
                               const std::string& parent,
                               const ServiceCurve& rsc, const ServiceCurve& fsc,
                               const ServiceCurve& usc, LeafQdisc qdisc,
                               std::size_t drr_quantum) {
  if (find_class(name)) return Status::already_exists;
  Class* par = find_class(parent);
  if (!par) return Status::not_found;
  if (!par->leaf_empty()) return Status::invalid_argument;  // was a busy leaf

  auto cl = std::make_unique<Class>();
  cl->name = name;
  cl->parent = par;
  cl->qdisc = qdisc;
  cl->drr_quantum = drr_quantum == 0 ? 1500 : drr_quantum;
  cl->rsc = rsc;
  cl->has_rsc = !rsc.zero();
  cl->fsc = fsc.zero() ? rsc : fsc;  // default link-share = guaranteed rate
  cl->has_fsc = !cl->fsc.zero();
  cl->usc = usc;
  cl->has_usc = !usc.zero();
  if (!cl->has_fsc && !cl->has_rsc) return Status::invalid_argument;
  if (cl->has_rsc) {
    cl->deadline.init(cl->rsc, 0, 0);
    cl->eligible = cl->deadline;
    if (cl->rsc.m1 <= cl->rsc.m2) {
      cl->eligible.dx = 0;
      cl->eligible.dy = 0;
    }
  }
  if (cl->has_fsc) cl->vt_curve.init(cl->fsc, 0, 0);
  if (cl->has_usc) cl->ul_curve.init(cl->usc, 0, 0);

  par->children.push_back(cl.get());
  classes_.push_back(std::move(cl));
  return Status::ok;
}

Status HfscInstance::bind_class(const aiu::Filter& f, const std::string& cls) {
  Class* cl = find_class(cls);
  if (!cl) return Status::not_found;
  if (!cl->is_leaf()) return Status::invalid_argument;
  bindings_.emplace_back(f, cl);
  return Status::ok;
}

HfscInstance::Class* HfscInstance::leaf_for(const pkt::Packet& p,
                                            void** flow_soft) {
  if (flow_soft && *flow_soft) return static_cast<Class*>(*flow_soft);
  Class* leaf = nullptr;
  for (auto& [f, cl] : bindings_) {
    if (f.matches(p.key)) {
      leaf = cl;
      break;
    }
  }
  if (!leaf) {
    if (!default_leaf_) {
      // Lazily create a best-effort leaf with a 10% link share.
      ServiceCurve def{cfg_.link_rate_bps / 8.0 / 10.0, 0,
                       cfg_.link_rate_bps / 8.0 / 10.0};
      add_class("default", "root", {}, def, {});
      default_leaf_ = find_class("default");
    }
    leaf = default_leaf_;
  }
  if (flow_soft) *flow_soft = leaf;
  return leaf;
}

void HfscInstance::set_active(Class* leaf, double now, std::size_t first_len) {
  if (leaf->has_rsc && !leaf->rt_active) {
    // init_ed: anchor the deadline curve at (now, cumul).
    leaf->deadline.min_with(leaf->rsc, now, leaf->cumul);
    leaf->eligible = leaf->deadline;
    if (leaf->rsc.m1 <= leaf->rsc.m2) {
      leaf->eligible.dx = 0;
      leaf->eligible.dy = 0;
    }
    leaf->e = leaf->eligible.y2x(leaf->cumul);
    leaf->dl = leaf->deadline.y2x(leaf->cumul + static_cast<double>(first_len));
    leaf->rt_active = true;
  }
  // init_vf: activate the link-share chain up to the root.
  for (Class* c = leaf; c->parent; c = c->parent) {
    if (c->ls_active) break;
    Class* par = c->parent;
    if (par->active_children > 0) {
      double minvt = kInf;
      for (Class* sib : par->children)
        if (sib->ls_active && sib->vt < minvt) minvt = sib->vt;
      if (minvt < kInf && minvt > c->vt) c->vt = minvt;
    } else if (par->cvtmax > c->vt) {
      c->vt = par->cvtmax;
    }
    c->vt_curve.min_with(c->fsc, c->vt, c->total);
    c->vt = c->vt_curve.y2x(c->total);
    if (c->has_usc) {
      c->ul_curve.min_with(c->usc, now, c->total);
      c->myf = c->ul_curve.y2x(c->total);
    }
    c->ls_active = true;
    ++par->active_children;
  }
}

void HfscInstance::set_passive(Class* leaf) {
  leaf->rt_active = false;
  for (Class* c = leaf; c->parent; c = c->parent) {
    if (!c->ls_active) break;
    if (c->is_leaf() ? !c->leaf_empty() : c->active_children > 0) break;
    c->ls_active = false;
    --c->parent->active_children;
    if (c->vt > c->parent->cvtmax) c->parent->cvtmax = c->vt;
  }
}

void HfscInstance::update_ed(Class* cl, double /*now*/, std::size_t next_len) {
  cl->e = cl->eligible.y2x(cl->cumul);
  cl->dl = cl->deadline.y2x(cl->cumul + static_cast<double>(next_len));
}

HfscInstance::Class* HfscInstance::select_realtime(double now) {
  Class* best = nullptr;
  for (auto& c : classes_) {
    if (!c->rt_active || c->leaf_empty()) continue;
    if (c->e <= now + kEps && (!best || c->dl < best->dl)) best = c.get();
  }
  return best;
}

HfscInstance::Class* HfscInstance::select_linkshare(double now) {
  Class* c = root_;
  while (!c->is_leaf()) {
    Class* best = nullptr;
    for (Class* child : c->children) {
      if (!child->ls_active) continue;
      if (child->has_usc && child->myf > now + kEps) continue;  // limited
      if (!best || child->vt < best->vt) best = child;
    }
    if (!best) return nullptr;
    c = best;
  }
  return c->leaf_empty() ? nullptr : c;
}

pkt::PacketPtr HfscInstance::serve(Class* leaf, bool realtime, double now) {
  auto p = leaf->leaf_dequeue();
  const auto len = static_cast<double>(p->size());
  backlog_bytes_ -= p->size();
  --backlog_pkts_;
  leaf->bytes_sent += p->size();
  ++leaf->pkts_sent;

  if (realtime) leaf->cumul += len;

  // update_vf: virtual time (and upper-limit fit time) along the path.
  for (Class* c = leaf; c->parent; c = c->parent) {
    c->total += len;
    c->vt = c->vt_curve.y2x(c->total);
    if (c->has_usc) c->myf = c->ul_curve.y2x(c->total);
  }
  root_->total += len;

  if (leaf->leaf_empty()) {
    set_passive(leaf);
  } else if (leaf->rt_active) {
    update_ed(leaf, now, leaf->leaf_next_len());
  }
  return p;
}

bool HfscInstance::enqueue(pkt::PacketPtr p, void** flow_soft,
                           netbase::SimTime now) {
  Class* leaf = leaf_for(*p, flow_soft);
  if (leaf->backlog >= cfg_.leaf_limit) {
    ++leaf->drops;
    return false;
  }
  const bool was_empty = leaf->leaf_empty();
  backlog_bytes_ += p->size();
  ++backlog_pkts_;
  const std::size_t len = p->size();
  leaf->leaf_enqueue(std::move(p));
  if (was_empty) set_active(leaf, static_cast<double>(now), len);
  return true;
}

void HfscInstance::enqueue_burst(pkt::PacketPtr* pkts, void** const* softs,
                                 bool* accepted, std::size_t n,
                                 netbase::SimTime now) {
  // A run shares one flow-table soft slot across its train, so the leaf
  // resolves once; admission, backlog and activation stay per-packet —
  // set_active must see the true head length when the leaf wakes.
  void** memo_soft = nullptr;
  Class* memo_leaf = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    pkt::PacketPtr p = std::move(pkts[i]);
    Class* leaf;
    if (softs[i] && softs[i] == memo_soft) {
      leaf = memo_leaf;
    } else {
      leaf = leaf_for(*p, softs[i]);
      if (softs[i]) {
        memo_soft = softs[i];
        memo_leaf = leaf;
      }
    }
    if (leaf->backlog >= cfg_.leaf_limit) {
      ++leaf->drops;
      accepted[i] = false;
      p.reset();  // rejected packets are freed, as by-value enqueue() does
      continue;
    }
    const bool was_empty = leaf->leaf_empty();
    backlog_bytes_ += p->size();
    ++backlog_pkts_;
    const std::size_t len = p->size();
    leaf->leaf_enqueue(std::move(p));
    if (was_empty) set_active(leaf, static_cast<double>(now), len);
    accepted[i] = true;
  }
}

pkt::PacketPtr HfscInstance::dequeue(netbase::SimTime now) {
  if (backlog_pkts_ == 0) return nullptr;
  const double t = static_cast<double>(now);
  if (Class* leaf = select_realtime(t)) return serve(leaf, true, t);
  if (Class* leaf = select_linkshare(t)) return serve(leaf, false, t);
  // Everything is upper-limited (or waiting on eligibility): the kernel
  // will retry at next_wakeup time. Stay non-work-conserving, as H-FSC's
  // upper limit requires.
  return nullptr;
}

netbase::SimTime HfscInstance::next_wakeup(netbase::SimTime now) const {
  if (backlog_pkts_ == 0) return -1;
  double best = kInf;
  for (const auto& c : classes_) {
    if (c->rt_active && !c->leaf_empty() && c->e > static_cast<double>(now) &&
        c->e < best)
      best = c->e;
    if (c->ls_active && c->has_usc && c->myf > static_cast<double>(now) &&
        c->myf < best)
      best = c->myf;
  }
  if (best == kInf) return -1;
  return static_cast<netbase::SimTime>(std::ceil(best));
}

std::vector<HfscInstance::ClassStats> HfscInstance::class_stats() const {
  std::vector<ClassStats> out;
  for (const auto& c : classes_) {
    out.push_back({c->name, c->bytes_sent, c->pkts_sent, c->drops,
                   c->backlog});
  }
  return out;
}

Status HfscInstance::handle_message(const plugin::PluginMsg& msg,
                                    plugin::PluginReply& reply) {
  auto curve = [&](const char* prefix) {
    std::string m1k = std::string(prefix) + "_m1";
    std::string dk = std::string(prefix) + "_d_us";
    std::string m2k = std::string(prefix) + "_m2";
    ServiceCurve sc;
    sc.m1 = static_cast<double>(msg.args.get_int_or(m1k, 0)) / 8.0;  // bps->Bps
    sc.d = static_cast<double>(msg.args.get_int_or(dk, 0)) * 1000.0; // us->ns
    sc.m2 = static_cast<double>(msg.args.get_int_or(m2k, 0)) / 8.0;
    return sc;
  };

  if (msg.custom_name == "addclass") {
    auto name = msg.args.get("name");
    if (!name) return Status::invalid_argument;
    auto qd = msg.args.get_or("qdisc", "fifo");
    LeafQdisc qdisc;
    if (qd == "fifo") qdisc = LeafQdisc::fifo;
    else if (qd == "drr") qdisc = LeafQdisc::drr;
    else return Status::invalid_argument;
    return add_class(std::string(*name), msg.args.get_or("parent", "root"),
                     curve("rt"), curve("ls"), curve("ul"), qdisc,
                     static_cast<std::size_t>(
                         msg.args.get_int_or("drr_quantum", 1500)));
  }
  if (msg.custom_name == "bindclass") {
    auto cls = msg.args.get("class");
    auto spec = msg.args.get("filter");
    if (!cls || !spec) return Status::invalid_argument;
    auto f = aiu::Filter::parse(*spec);
    if (!f) return Status::invalid_argument;
    return bind_class(*f, std::string(*cls));
  }
  if (msg.custom_name == "stats") {
    for (const auto& s : class_stats()) {
      reply.text += s.name + ": pkts=" + std::to_string(s.pkts_sent) +
                    " bytes=" + std::to_string(s.bytes_sent) +
                    " drops=" + std::to_string(s.drops) +
                    " backlog=" + std::to_string(s.backlog) + "\n";
    }
    return Status::ok;
  }
  return Status::unsupported;
}

}  // namespace rp::sched

// Token-bucket policer plugin — the enforcement half of the paper's edge-
// router story: "modern edge routers ... responsible for ... enforcing the
// configured profiles of differential service flows. This kind of
// enforcement can be done either on a per-application flow basis, or on a
// generalized class-based approach."
//
// An instance is a profile (rate, burst, action). Bound to a filter it
// polices all matching flows; with per_flow=1 each flow gets its own bucket
// (stored in the flow table's soft-state slot), otherwise all matching
// traffic shares one bucket (the class-based mode). Non-conformant packets
// are dropped, or remarked (DSCP/traffic-class) when action=mark.
//
// Registered as the `congestion` plugin type (the pre-routing policing
// gate).
#pragma once

#include <list>
#include <memory>

#include "netbase/clock.hpp"
#include "plugin/loader.hpp"
#include "plugin/plugin.hpp"

namespace rp::sched {

class PolicerInstance final : public plugin::PluginInstance {
 public:
  struct Config {
    std::uint64_t rate_bps{1'000'000};
    std::uint32_t burst_bytes{16'000};
    bool per_flow{true};
    bool mark{false};          // remark instead of drop
    std::uint8_t mark_dscp{8}; // class selector CS1 (dscp << 2 into ToS)
  };

  explicit PolicerInstance(Config cfg) : cfg_(cfg) {}
  ~PolicerInstance() override;

  plugin::Verdict handle_packet(pkt::Packet& p, void** flow_soft) override;
  void flow_removed(void* flow_soft) override;
  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

  std::uint64_t conformant() const noexcept { return conformant_; }
  std::uint64_t exceeded() const noexcept { return exceeded_; }

 private:
  struct Bucket {
    double tokens{0};
    netbase::SimTime last{0};
    bool primed{false};
    void** soft_slot{nullptr};
  };

  // Returns true if `bytes` conforms (and consumes the tokens).
  bool conforms(Bucket& b, std::size_t bytes, netbase::SimTime now) const;
  Bucket* bucket_for(void** flow_soft);
  void remark(pkt::Packet& p) const;

  Config cfg_;
  Bucket shared_{};
  std::list<std::unique_ptr<Bucket>> buckets_;
  std::uint64_t conformant_{0};
  std::uint64_t exceeded_{0};
};

class PolicerPlugin final : public plugin::Plugin {
 public:
  PolicerPlugin() : Plugin("policer", plugin::PluginType::congestion) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override {
    PolicerInstance::Config c;
    c.rate_bps =
        static_cast<std::uint64_t>(cfg.get_int_or("rate_bps", 1'000'000));
    c.burst_bytes =
        static_cast<std::uint32_t>(cfg.get_int_or("burst", 16'000));
    c.per_flow = cfg.get_int_or("per_flow", 1) != 0;
    auto action = cfg.get_or("action", "drop");
    if (action == "mark") c.mark = true;
    else if (action != "drop") return nullptr;
    c.mark_dscp = static_cast<std::uint8_t>(cfg.get_int_or("dscp", 8));
    if (c.rate_bps == 0 || c.burst_bytes == 0) return nullptr;
    return std::make_unique<PolicerInstance>(c);
  }
};

void register_policer_plugin();

}  // namespace rp::sched

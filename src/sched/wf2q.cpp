#include "sched/wf2q.hpp"

#include <algorithm>

namespace rp::sched {

using netbase::Status;

Wf2qInstance::~Wf2qInstance() {
  for (auto& q : queues_)
    if (q->soft_slot) *q->soft_slot = nullptr;
}

std::uint32_t Wf2qInstance::weight_for(const pkt::FlowKey& key) const {
  for (const auto& [filter, w] : weight_rules_)
    if (filter.matches(key)) return w;
  return cfg_.default_weight;
}

Wf2qInstance::FlowQueue* Wf2qInstance::queue_for(const pkt::Packet& p,
                                                 void** flow_soft) {
  if (flow_soft && *flow_soft) return static_cast<FlowQueue*>(*flow_soft);
  if (!flow_soft) {
    if (auto it = fallback_.find(p.key); it != fallback_.end())
      return it->second;
  }
  auto q = std::make_unique<FlowQueue>();
  q->weight = weight_for(p.key);
  q->soft_slot = flow_soft;
  FlowQueue* raw = q.get();
  queues_.push_back(std::move(q));
  if (flow_soft)
    *flow_soft = raw;
  else
    fallback_[p.key] = raw;
  return raw;
}

void Wf2qInstance::stamp_head(FlowQueue& q) {
  // WF²Q+ start/finish rule: S = max(V, F_prev); F = S + L/w.
  q.start = std::max(vtime_, q.last_finish);
  q.finish = q.start + static_cast<double>(q.pkts.front()->size()) / q.weight;
}

bool Wf2qInstance::enqueue(pkt::PacketPtr p, void** flow_soft,
                           netbase::SimTime /*now*/) {
  FlowQueue* q = queue_for(*p, flow_soft);
  if (q->pkts.size() >= cfg_.per_flow_limit) {
    ++drops_;
    return false;
  }
  backlog_bytes_ += p->size();
  ++backlog_pkts_;
  q->pkts.push_back(std::move(p));
  if (!q->active) {
    q->active = true;
    active_.push_back(q);
    active_weight_ += q->weight;
    stamp_head(*q);
  }
  return true;
}

pkt::PacketPtr Wf2qInstance::dequeue(netbase::SimTime /*now*/) {
  if (active_.empty()) return nullptr;

  // The WF²Q+ virtual-time clamp: never fall below the smallest start among
  // backlogged flows (keeps the system work conserving).
  double min_start = active_.front()->start;
  for (FlowQueue* q : active_) min_start = std::min(min_start, q->start);
  if (vtime_ < min_start) vtime_ = min_start;

  // SEFF: smallest finish among flows whose start is eligible (<= V).
  FlowQueue* best = nullptr;
  for (FlowQueue* q : active_) {
    if (q->start > vtime_ + 1e-9) continue;
    if (!best || q->finish < best->finish) best = q;
  }
  if (!best) return nullptr;  // unreachable after the clamp

  auto p = std::move(best->pkts.front());
  best->pkts.pop_front();
  backlog_bytes_ -= p->size();
  --backlog_pkts_;
  best->last_finish = best->finish;

  // Advance V by the served work normalized by the active weight sum.
  vtime_ += static_cast<double>(p->size()) /
            static_cast<double>(active_weight_ ? active_weight_ : 1);

  if (best->pkts.empty()) {
    best->active = false;
    active_weight_ -= best->weight;
    std::erase(active_, best);
    if (best->orphaned) destroy(best);
  } else {
    stamp_head(*best);
  }
  return p;
}

void Wf2qInstance::flow_removed(void* flow_soft) {
  auto* q = static_cast<FlowQueue*>(flow_soft);
  if (!q) return;
  q->soft_slot = nullptr;
  if (q->pkts.empty() && !q->active) {
    destroy(q);
  } else {
    q->orphaned = true;
  }
}

void Wf2qInstance::destroy(FlowQueue* q) {
  for (const auto& p : q->pkts) {
    backlog_bytes_ -= p->size();
    --backlog_pkts_;
  }
  if (q->active) {
    active_weight_ -= q->weight;
    std::erase(active_, q);
  }
  std::erase_if(fallback_, [q](const auto& kv) { return kv.second == q; });
  queues_.remove_if([q](const auto& up) { return up.get() == q; });
}

Status Wf2qInstance::handle_message(const plugin::PluginMsg& msg,
                                    plugin::PluginReply& reply) {
  if (msg.custom_name == "setweight") {
    auto spec = msg.args.get("filter");
    auto weight = msg.args.get_int("weight");
    if (!spec || !weight || *weight < 1) return Status::invalid_argument;
    auto f = aiu::Filter::parse(*spec);
    if (!f) return Status::invalid_argument;
    for (auto& [filter, w] : weight_rules_) {
      if (filter == *f) {
        w = static_cast<std::uint32_t>(*weight);
        return Status::ok;
      }
    }
    weight_rules_.emplace_back(*f, static_cast<std::uint32_t>(*weight));
    return Status::ok;
  }
  if (msg.custom_name == "stats") {
    reply.text = "queues=" + std::to_string(queues_.size()) +
                 " backlog_pkts=" + std::to_string(backlog_pkts_) +
                 " vtime=" + std::to_string(vtime_) +
                 " drops=" + std::to_string(drops_);
    return Status::ok;
  }
  return Status::unsupported;
}

void register_wf2q_plugin() {
  plugin::PluginLoader::register_module(
      "wf2q", [] { return std::make_unique<Wf2qPlugin>(); });
}

}  // namespace rp::sched

#include "sched/red.hpp"

#include <algorithm>
#include <cmath>

namespace rp::sched {

using netbase::Status;

bool RedInstance::red_drop_decision() {
  if (avg_ < cfg_.min_th) {
    count_ = -1;
    return false;
  }
  if (avg_ >= cfg_.max_th) {
    count_ = 0;
    return true;  // forced region
  }
  ++count_;
  double pb = cfg_.max_p * (avg_ - cfg_.min_th) / (cfg_.max_th - cfg_.min_th);
  double pa = pb / (1.0 - std::min(0.999, count_ * pb));
  if (rng_.chance(pa)) {
    count_ = 0;
    return true;
  }
  return false;
}

bool RedInstance::enqueue(pkt::PacketPtr p, void** /*flow_soft*/,
                          netbase::SimTime now) {
  // EWMA update; idle periods decay the average as if the queue drained.
  if (q_.empty() && idle_since_ >= 0 && now > idle_since_) {
    // Approximate m packets that could have been transmitted while idle.
    double m = static_cast<double>(now - idle_since_) / 1'000'000.0;  // /1ms
    avg_ *= std::pow(1.0 - cfg_.ewma_weight, m);
  }
  idle_since_ = -1;
  avg_ += cfg_.ewma_weight * (static_cast<double>(q_.size()) - avg_);

  if (q_.size() >= cfg_.limit) {
    ++forced_drops_;
    return false;
  }
  if (avg_ >= cfg_.min_th && red_drop_decision()) {
    if (avg_ >= cfg_.max_th)
      ++forced_drops_;
    else
      ++early_drops_;
    return false;
  }
  bytes_ += p->size();
  q_.push_back(std::move(p));
  return true;
}

pkt::PacketPtr RedInstance::dequeue(netbase::SimTime now) {
  if (q_.empty()) return nullptr;
  auto p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p->size();
  if (q_.empty()) idle_since_ = now;
  return p;
}

Status RedInstance::handle_message(const plugin::PluginMsg& msg,
                                   plugin::PluginReply& reply) {
  if (msg.custom_name == "stats") {
    reply.text = "avg=" + std::to_string(avg_) +
                 " early_drops=" + std::to_string(early_drops_) +
                 " forced_drops=" + std::to_string(forced_drops_) +
                 " backlog=" + std::to_string(q_.size());
    return Status::ok;
  }
  return Status::unsupported;
}

}  // namespace rp::sched

// ALTQ-style WFQ baseline (Section 6.1): the original implementation the
// paper derives its DRR plugin from. ALTQ's WFQ module distributes flows
// over a *fixed* number of queues by hashing packet-header fields — so
// distinct flows can collide in one queue and lose isolation, which is
// precisely the limitation the per-flow DRR plugin removes. Row 3 of
// Table 3 ("NetBSD with ALTQ and DRR") runs this module.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/scheduler_base.hpp"
#include "plugin/plugin.hpp"

namespace rp::sched {

class AltqWfqInstance final : public core::OutputScheduler {
 public:
  AltqWfqInstance(std::size_t num_queues, std::size_t quantum,
                  std::size_t per_queue_limit)
      : queues_(num_queues), quantum_(quantum), limit_(per_queue_limit) {}

  bool enqueue(pkt::PacketPtr p, void** flow_soft,
               netbase::SimTime now) override;
  pkt::PacketPtr dequeue(netbase::SimTime now) override;
  bool empty() const override { return backlog_pkts_ == 0; }
  std::size_t backlog_packets() const override { return backlog_pkts_; }
  std::size_t backlog_bytes() const override { return backlog_bytes_; }

  std::size_t num_queues() const noexcept { return queues_.size(); }
  std::uint64_t drops() const noexcept { return drops_; }

 private:
  struct Queue {
    std::deque<pkt::PacketPtr> pkts;
    std::int64_t deficit{0};
    bool active{false};
    bool fresh_visit{true};
  };

  // ALTQ's own classifier: hash header fields onto the fixed queue array.
  std::size_t classify(const pkt::Packet& p) const {
    return static_cast<std::size_t>(p.key.hash() % queues_.size());
  }

  std::vector<Queue> queues_;
  std::deque<std::size_t> active_;
  std::size_t quantum_;
  std::size_t limit_;
  std::size_t backlog_pkts_{0};
  std::size_t backlog_bytes_{0};
  std::uint64_t drops_{0};
};

class AltqWfqPlugin final : public plugin::Plugin {
 public:
  AltqWfqPlugin() : Plugin("altq-wfq", plugin::PluginType::sched) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override {
    auto n = cfg.get_int_or("queues", 256);
    auto q = cfg.get_int_or("quantum", 1500);
    auto lim = cfg.get_int_or("limit", 64);
    if (n < 1 || q < 1 || lim < 1) return nullptr;
    return std::make_unique<AltqWfqInstance>(
        static_cast<std::size_t>(n), static_cast<std::size_t>(q),
        static_cast<std::size_t>(lim));
  }
};

}  // namespace rp::sched

#include "sched/register.hpp"

#include "sched/drr.hpp"
#include "sched/eiffel.hpp"
#include "sched/fifo.hpp"
#include "sched/hfsc.hpp"
#include "sched/policer.hpp"
#include "sched/red.hpp"
#include "sched/wf2q.hpp"
#include "sched/wfq_altq.hpp"

namespace rp::sched {

void register_sched_plugins() {
  using plugin::PluginLoader;
  PluginLoader::register_module("fifo",
                                [] { return std::make_unique<FifoPlugin>(); });
  PluginLoader::register_module("drr",
                                [] { return std::make_unique<DrrPlugin>(); });
  PluginLoader::register_module("hfsc",
                                [] { return std::make_unique<HfscPlugin>(); });
  PluginLoader::register_module(
      "eiffel", [] { return std::make_unique<EiffelPlugin>(); });
  PluginLoader::register_module(
      "altq-wfq", [] { return std::make_unique<AltqWfqPlugin>(); });
  PluginLoader::register_module("red",
                                [] { return std::make_unique<RedPlugin>(); });
  register_wf2q_plugin();
  register_policer_plugin();
}

}  // namespace rp::sched

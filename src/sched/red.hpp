// RED (Random Early Detection) queue — the paper lists "a plugin for
// congestion control mechanisms (e.g., RED)" among the envisioned plugin
// types; we implement it as a FIFO with Floyd/Jacobson early-drop applied at
// enqueue (RED is queue management, so it lives with the output queue).
#pragma once

#include <deque>
#include <memory>

#include "core/scheduler_base.hpp"
#include "netbase/rng.hpp"
#include "plugin/plugin.hpp"

namespace rp::sched {

class RedInstance final : public core::OutputScheduler {
 public:
  struct Config {
    std::size_t limit{256};    // hard queue limit, packets
    double min_th{32};         // packets
    double max_th{128};        // packets
    double max_p{0.10};        // drop probability at max_th
    double ewma_weight{0.002}; // w_q
    std::uint64_t seed{42};
  };

  explicit RedInstance(Config cfg) : cfg_(cfg), rng_(cfg.seed) {}

  bool enqueue(pkt::PacketPtr p, void** flow_soft,
               netbase::SimTime now) override;
  pkt::PacketPtr dequeue(netbase::SimTime now) override;
  bool empty() const override { return q_.empty(); }
  std::size_t backlog_packets() const override { return q_.size(); }
  std::size_t backlog_bytes() const override { return bytes_; }

  double avg_queue() const noexcept { return avg_; }
  std::uint64_t early_drops() const noexcept { return early_drops_; }
  std::uint64_t forced_drops() const noexcept { return forced_drops_; }

  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

 private:
  bool red_drop_decision();

  Config cfg_;
  netbase::Rng rng_;
  std::deque<pkt::PacketPtr> q_;
  std::size_t bytes_{0};
  double avg_{0.0};
  int count_{-1};  // packets since last early drop (RED's "count")
  netbase::SimTime idle_since_{-1};
  std::uint64_t early_drops_{0};
  std::uint64_t forced_drops_{0};
};

class RedPlugin final : public plugin::Plugin {
 public:
  RedPlugin() : Plugin("red", plugin::PluginType::sched) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override {
    RedInstance::Config c;
    c.limit = static_cast<std::size_t>(cfg.get_int_or("limit", 256));
    c.min_th = static_cast<double>(cfg.get_int_or("min_th", 32));
    c.max_th = static_cast<double>(cfg.get_int_or("max_th", 128));
    c.max_p = cfg.get_int_or("max_p_percent", 10) / 100.0;
    c.seed = static_cast<std::uint64_t>(cfg.get_int_or("seed", 42));
    if (c.min_th >= c.max_th || c.max_th > static_cast<double>(c.limit))
      return nullptr;
    return std::make_unique<RedInstance>(c);
  }
};

}  // namespace rp::sched

// WF²Q+ scheduler plugin (Bennett & Zhang, the paper's reference [4]:
// "WF2Q: Worst-case Fair Weighted Fair Queueing").
//
// Packet-level weighted fair queueing with the worst-case-fairness
// eligibility rule: a flow's head packet may only be served once its
// virtual start time is at or below the system virtual time, and among
// eligible flows the smallest virtual *finish* time goes first (smallest
// eligible virtual finish, SEFF). This keeps any flow at most one packet
// ahead of its fluid-model service — the property plain WFQ/virtual-clock
// schedulers lack.
//
// Per-flow queues live in the flow table's soft-state slot, like DRR; flows
// without a slot (port-default traffic) are self-classified by flow key.
// Weights are configured with the same `setweight` message as DRR.
#pragma once

#include <deque>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "aiu/filter.hpp"
#include "core/scheduler_base.hpp"
#include "plugin/loader.hpp"
#include "plugin/plugin.hpp"

namespace rp::sched {

class Wf2qInstance final : public core::OutputScheduler {
 public:
  struct Config {
    std::size_t per_flow_limit{128};
    std::uint32_t default_weight{1};
  };

  explicit Wf2qInstance(Config cfg) : cfg_(cfg) {}
  ~Wf2qInstance() override;

  bool enqueue(pkt::PacketPtr p, void** flow_soft,
               netbase::SimTime now) override;
  pkt::PacketPtr dequeue(netbase::SimTime now) override;
  bool empty() const override { return backlog_pkts_ == 0; }
  std::size_t backlog_packets() const override { return backlog_pkts_; }
  std::size_t backlog_bytes() const override { return backlog_bytes_; }

  void flow_removed(void* flow_soft) override;
  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

  std::size_t queue_count() const noexcept { return queues_.size(); }
  double virtual_time() const noexcept { return vtime_; }

 private:
  struct FlowQueue {
    std::deque<pkt::PacketPtr> pkts;
    std::uint32_t weight{1};
    double start{0};   // virtual start of the head packet
    double finish{0};  // virtual finish of the head packet
    double last_finish{0};
    bool active{false};
    bool orphaned{false};
    void** soft_slot{nullptr};
  };

  struct KeyHash {
    std::size_t operator()(const pkt::FlowKey& k) const noexcept {
      return static_cast<std::size_t>(k.hash());
    }
  };

  FlowQueue* queue_for(const pkt::Packet& p, void** flow_soft);
  std::uint32_t weight_for(const pkt::FlowKey& key) const;
  void stamp_head(FlowQueue& q);  // compute start/finish for the new head
  void destroy(FlowQueue* q);

  Config cfg_;
  std::list<std::unique_ptr<FlowQueue>> queues_;
  std::vector<FlowQueue*> active_;
  std::unordered_map<pkt::FlowKey, FlowQueue*, KeyHash> fallback_;
  std::vector<std::pair<aiu::Filter, std::uint32_t>> weight_rules_;

  double vtime_{0};
  std::uint64_t active_weight_{0};
  std::size_t backlog_pkts_{0};
  std::size_t backlog_bytes_{0};
  std::uint64_t drops_{0};
};

class Wf2qPlugin final : public plugin::Plugin {
 public:
  Wf2qPlugin() : Plugin("wf2q", plugin::PluginType::sched) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override {
    Wf2qInstance::Config c;
    c.per_flow_limit = static_cast<std::size_t>(cfg.get_int_or("limit", 128));
    c.default_weight =
        static_cast<std::uint32_t>(cfg.get_int_or("weight", 1));
    if (c.per_flow_limit == 0 || c.default_weight == 0) return nullptr;
    return std::make_unique<Wf2qInstance>(c);
  }
};

void register_wf2q_plugin();

}  // namespace rp::sched

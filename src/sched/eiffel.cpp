#include "sched/eiffel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace rp::sched {

using netbase::SimTime;
using netbase::Status;

namespace {
// Fixed-point scale for virtual time: one byte of a weight-1 flow advances
// the finish tag by kWScale units, so integer division by the weight keeps
// sub-byte precision up to weight 256.
constexpr std::uint64_t kWScale = 256;
constexpr std::uint64_t kDefaultVtimeGranBytes = 128;
constexpr std::uint64_t kDefaultDeadlineGranNs = 16384;
}  // namespace

EiffelInstance::EiffelInstance(Config cfg) : cfg_(cfg) {
  horizon_ = std::clamp<std::size_t>((cfg_.horizon + 63) & ~std::size_t{63},
                                     64, 4096);
  switch (cfg_.rank) {
    case RankFn::prio:
      gran_ = 1;
      break;
    case RankFn::vtime:
      gran_ = (cfg_.gran ? cfg_.gran : kDefaultVtimeGranBytes) * kWScale;
      break;
    case RankFn::deadline:
      gran_ = cfg_.gran ? cfg_.gran : kDefaultDeadlineGranNs;
      break;
  }
  const std::size_t words = horizon_ / 64;
  cur_.l1.assign(words, 0);
  cur_.buckets.assign(horizon_, Bucket{});
  ovf_.l1.assign(words, 0);
  ovf_.buckets.assign(horizon_, Bucket{});

  static std::atomic<std::uint64_t> next_tag{0};
  metric_prefix_ =
      "eiffel." + std::to_string(next_tag.fetch_add(1)) + ".";
  auto& reg = telemetry::metrics();
  reg.add(metric_prefix_ + "enqueues", &enqueues_, this);
  reg.add(metric_prefix_ + "dequeues", &dequeues_, this);
  reg.add(metric_prefix_ + "drops", &drops_, this);
  reg.add(metric_prefix_ + "rotations", &rotations_, this);
  reg.add(metric_prefix_ + "bucket_scans", &bucket_scans_, this);
  reg.add(metric_prefix_ + "far_admits", &far_admits_, this);
  reg.add(metric_prefix_ + "occupancy", &occupancy_, this);
}

EiffelInstance::~EiffelInstance() {
  telemetry::metrics().remove_owner(this);
  // Clear flow-table soft slots that still point at our queues.
  for (auto& q : queues_)
    if (q->soft_slot) *q->soft_slot = nullptr;
}

// ---------------------------------------------------------------------------
// FFS ring primitives.

int EiffelInstance::ring_first(const Ring& r) const {
  if (!r.l0) return -1;
  const unsigned w = static_cast<unsigned>(std::countr_zero(r.l0));
  return static_cast<int>((w << 6) +
                          static_cast<unsigned>(std::countr_zero(r.l1[w])));
}

void EiffelInstance::ring_push(Ring& r, std::size_t idx, FlowQueue* q) {
  Bucket& bk = r.buckets[idx];
  q->bprev = bk.tail;
  q->bnext = nullptr;
  if (bk.tail)
    bk.tail->bnext = q;
  else
    bk.head = q;
  bk.tail = q;
  r.l1[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  r.l0 |= std::uint64_t{1} << (idx >> 6);
}

void EiffelInstance::ring_unlink(Ring& r, std::size_t idx, FlowQueue* q) {
  Bucket& bk = r.buckets[idx];
  if (q->bprev)
    q->bprev->bnext = q->bnext;
  else
    bk.head = q->bnext;
  if (q->bnext)
    q->bnext->bprev = q->bprev;
  else
    bk.tail = q->bprev;
  q->bprev = q->bnext = nullptr;
  if (!bk.head) {
    r.l1[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    if (!r.l1[idx >> 6]) r.l0 &= ~(std::uint64_t{1} << (idx >> 6));
  }
}

// ---------------------------------------------------------------------------
// Rank functions.

std::uint64_t EiffelInstance::vlen(std::size_t bytes,
                                   std::uint32_t weight) const {
  const std::uint64_t v =
      (static_cast<std::uint64_t>(bytes) * kWScale) / std::max(weight, 1u);
  return v ? v : 1;
}

std::uint64_t EiffelInstance::rank_for_head(FlowQueue* q, SimTime now,
                                            bool activation) {
  switch (cfg_.rank) {
    case RankFn::prio:
      // Static priority, lower served first. The whole rank space lives in
      // the cur ring (base_ never advances in prio mode).
      return std::min<std::uint64_t>(q->prio, horizon_ - 1);
    case RankFn::vtime: {
      // WFQ start/finish tags: a freshly active flow starts at the virtual
      // clock (or its own stale finish tag if that is later); a busy flow's
      // next packet starts where the previous one finished.
      std::uint64_t start = q->vnext;
      if (activation) start = std::max(start, vtime_);
      const std::uint64_t finish = start + vlen(q->pkts.front()->size(),
                                                q->weight);
      q->vnext = finish;
      return finish / gran_;
    }
    case RankFn::deadline: {
      // H-FSC real-time criterion for a single flow: re-anchor the runtime
      // curve on each activation (rtsc_min), deadline = y2x of the head.
      const double dnow = static_cast<double>(now);
      if (activation) {
        if (!q->curve_live) {
          q->dcurve.init(q->curve, dnow, q->cumul);
          q->curve_live = true;
        } else {
          q->dcurve.min_with(q->curve, dnow, q->cumul);
        }
      }
      const double dl =
          q->dcurve.y2x(q->cumul + static_cast<double>(q->pkts.front()->size()));
      if (!std::isfinite(dl))  // zero-slope curve: park far in the future
        return base_ + 2 * horizon_ + (std::uint64_t{1} << 30);
      return static_cast<std::uint64_t>(dl) / gran_;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Window placement and rotation.

void EiffelInstance::insert(FlowQueue* q, std::uint64_t rank) {
  // Snap the window when the structure is empty (deadline ranks can jump
  // arbitrarily far between busy periods). Half a ring of slack below the
  // first rank keeps room for flows whose ranks land slightly earlier than
  // the flow that happened to arrive first. Never in prio mode: priorities
  // are absolute bucket indices and base_ must stay 0.
  if (active_flows_ == 0 && cfg_.rank != RankFn::prio) {
    const std::uint64_t slack = horizon_ / 2;
    base_ = rank > slack ? rank - slack : 0;
  }
  if (rank < base_) rank = base_;  // late rank: serve as soon as possible
  q->rank = rank;
  const std::uint64_t off = rank - base_;
  if (off < horizon_) {
    ring_push(cur_, static_cast<std::size_t>(off), q);
    q->where = Where::cur;
  } else if (off < 2 * horizon_) {
    ring_push(ovf_, static_cast<std::size_t>(off - horizon_), q);
    q->where = Where::ovf;
  } else {
    far_.push_back(q);
    q->where = Where::far;
    far_admits_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EiffelInstance::activate(FlowQueue* q, SimTime now) {
  insert(q, rank_for_head(q, now, /*activation=*/true));
  ++active_flows_;
}

void EiffelInstance::rotate() {
  rotations_.fetch_add(1, std::memory_order_relaxed);
  if (!ovf_.empty()) {
    std::swap(cur_, ovf_);
    base_ += horizon_;
    // The swap moved every overflow flow into the cur ring: retag them.
    // Cost is bounded by the occupied buckets (found via the bitmap), not H.
    std::uint64_t l0 = cur_.l0;
    while (l0) {
      const auto w = static_cast<std::size_t>(std::countr_zero(l0));
      l0 &= l0 - 1;
      std::uint64_t word = cur_.l1[w];
      while (word) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        for (FlowQueue* q = cur_.buckets[(w << 6) + bit].head; q; q = q->bnext)
          q->where = Where::cur;
      }
    }
  } else {
    // Both rings drained with everything in the far list: jump the window
    // straight to the minimum far rank instead of rotating H at a time.
    std::uint64_t mn = std::numeric_limits<std::uint64_t>::max();
    for (const FlowQueue* q : far_) mn = std::min(mn, q->rank);
    if (mn == std::numeric_limits<std::uint64_t>::max()) return;
    base_ = mn;
  }
  if (far_.empty()) return;
  std::size_t w = 0;
  for (FlowQueue* q : far_) {
    const std::uint64_t off = q->rank - base_;  // far ranks are >= old base
    if (q->rank >= base_ && off < horizon_) {
      ring_push(cur_, static_cast<std::size_t>(off), q);
      q->where = Where::cur;
    } else if (q->rank >= base_ && off < 2 * horizon_) {
      ring_push(ovf_, static_cast<std::size_t>(off - horizon_), q);
      q->where = Where::ovf;
    } else {
      far_[w++] = q;
    }
  }
  far_.resize(w);
}

// ---------------------------------------------------------------------------
// Flow-queue resolution (soft slot / fallback), mirroring DRR.

void EiffelInstance::apply_rules(FlowQueue* q) const {
  q->weight = cfg_.default_weight;
  q->prio = cfg_.default_prio;
  q->curve = cfg_.default_curve;
  bool got_w = false, got_p = false, got_c = false;
  for (const auto& r : rules_) {
    if (got_w && got_p && got_c) break;
    if (!r.filter.matches(q->key)) continue;
    if (r.weight && !got_w) {
      q->weight = r.weight;
      got_w = true;
    }
    if (r.has_prio && !got_p) {
      q->prio = r.prio;
      got_p = true;
    }
    if (r.has_curve && !got_c) {
      q->curve = r.curve;
      got_c = true;
    }
  }
}

EiffelInstance::FlowQueue* EiffelInstance::queue_for(const pkt::Packet& p,
                                                     void** flow_soft) {
  if (flow_soft && *flow_soft) return static_cast<FlowQueue*>(*flow_soft);
  if (!flow_soft) {
    if (auto it = fallback_.find(p.key); it != fallback_.end())
      return it->second;
  }
  auto q = std::make_unique<FlowQueue>();
  q->key = p.key;
  q->soft_slot = flow_soft;
  apply_rules(q.get());
  FlowQueue* raw = q.get();
  queues_.push_back(std::move(q));
  raw->self = std::prev(queues_.end());
  if (flow_soft) {
    *flow_soft = raw;  // per-flow soft state in the flow record (§5.2)
  } else {
    raw->in_fallback = true;
    fallback_[p.key] = raw;  // self-classified; freed again on drain
  }
  return raw;
}

void EiffelInstance::destroy(FlowQueue* q) {
  // Only ever called on a drained, unlinked queue.
  if (q->soft_slot) *q->soft_slot = nullptr;
  if (q->in_fallback) fallback_.erase(q->key);
  queues_.erase(q->self);
}

// ---------------------------------------------------------------------------
// Datapath.

bool EiffelInstance::enqueue(pkt::PacketPtr p, void** flow_soft,
                             SimTime now) {
  FlowQueue* q = queue_for(*p, flow_soft);
  if (q->pkts.size() >= cfg_.per_flow_limit) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  backlog_bytes_ += p->size();
  ++backlog_pkts_;
  q->pkts.push_back(std::move(p));
  if (q->where == Where::idle) activate(q, now);
  enqueues_.fetch_add(1, std::memory_order_relaxed);
  occupancy_.store(backlog_pkts_, std::memory_order_relaxed);
  return true;
}

void EiffelInstance::enqueue_burst(pkt::PacketPtr* pkts, void** const* softs,
                                   bool* accepted, std::size_t n,
                                   SimTime now) {
  // A run shares one flow-table soft slot across its train, so the flow
  // queue resolves once; the fallback path (no slot) still classifies each
  // packet. Per-packet admission is unchanged from enqueue().
  void** memo_soft = nullptr;
  FlowQueue* memo_q = nullptr;
  std::uint64_t accepted_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pkt::PacketPtr p = std::move(pkts[i]);
    FlowQueue* q;
    if (softs[i] && softs[i] == memo_soft) {
      q = memo_q;
    } else {
      q = queue_for(*p, softs[i]);
      if (softs[i]) {
        memo_soft = softs[i];
        memo_q = q;
      }
    }
    if (q->pkts.size() >= cfg_.per_flow_limit) {
      drops_.fetch_add(1, std::memory_order_relaxed);
      accepted[i] = false;
      p.reset();  // rejected packets are freed, as by-value enqueue() does
      continue;
    }
    backlog_bytes_ += p->size();
    ++backlog_pkts_;
    q->pkts.push_back(std::move(p));
    if (q->where == Where::idle) activate(q, now);
    accepted[i] = true;
    ++accepted_n;
  }
  enqueues_.fetch_add(accepted_n, std::memory_order_relaxed);
  occupancy_.store(backlog_pkts_, std::memory_order_relaxed);
}

pkt::PacketPtr EiffelInstance::dequeue(SimTime now) {
  if (backlog_pkts_ == 0) return nullptr;
  for (;;) {
    const int b = ring_first(cur_);
    bucket_scans_.fetch_add(2, std::memory_order_relaxed);
    if (b < 0) {
      if (ovf_.empty() && far_.empty()) return nullptr;  // defensive
      rotate();
      continue;
    }
    const std::uint64_t rank = base_ + static_cast<std::uint64_t>(b);
    if (cfg_.shaped && cfg_.rank == RankFn::deadline) {
      const auto release = static_cast<SimTime>(rank * gran_);
      if (release > now) return nullptr;  // next_wakeup drives the retry
    }
    FlowQueue* q = cur_.buckets[static_cast<std::size_t>(b)].head;
    ring_unlink(cur_, static_cast<std::size_t>(b), q);
    q->where = Where::idle;
    auto p = std::move(q->pkts.front());
    q->pkts.pop_front();
    backlog_bytes_ -= p->size();
    --backlog_pkts_;
    dequeues_.fetch_add(1, std::memory_order_relaxed);
    occupancy_.store(backlog_pkts_, std::memory_order_relaxed);
    if (cfg_.rank == RankFn::vtime)
      vtime_ = std::max(vtime_, q->vnext);  // served packet's finish tag
    else if (cfg_.rank == RankFn::deadline)
      q->cumul += static_cast<double>(p->size());
    if (!q->pkts.empty()) {
      insert(q, rank_for_head(q, now, /*activation=*/false));
    } else {
      --active_flows_;
      // Orphaned (flow-table entry gone) and self-classified fallback
      // queues are freed the moment they drain, so churn cannot accrete
      // per-flow state.
      if (q->orphaned || q->in_fallback) destroy(q);
    }
    return p;
  }
}

SimTime EiffelInstance::next_wakeup(SimTime now) const {
  if (!(cfg_.shaped && cfg_.rank == RankFn::deadline)) return -1;
  if (backlog_pkts_ == 0) return -1;
  const int b = ring_first(cur_);
  if (b < 0) return -1;  // rotation pending; dequeue() will resolve it
  const auto release =
      static_cast<SimTime>((base_ + static_cast<std::uint64_t>(b)) * gran_);
  return release > now ? release : now + 1;
}

void EiffelInstance::flow_removed(void* flow_soft) {
  auto* q = static_cast<FlowQueue*>(flow_soft);
  if (!q) return;
  q->soft_slot = nullptr;
  if (q->pkts.empty())
    destroy(q);
  else
    q->orphaned = true;  // drain in-flight packets first
}

// ---------------------------------------------------------------------------
// Control surface.

Status EiffelInstance::handle_message(const plugin::PluginMsg& msg,
                                      plugin::PluginReply& reply) {
  auto upsert = [this](const aiu::Filter& f) -> Rule& {
    for (auto& r : rules_)
      if (r.filter == f) return r;
    rules_.push_back(Rule{f, 0, 0, false, ServiceCurve{}, false});
    return rules_.back();
  };
  if (msg.custom_name == "setweight") {
    auto spec = msg.args.get("filter");
    auto weight = msg.args.get_int("weight");
    if (!spec || !weight || *weight < 1) return Status::invalid_argument;
    auto f = aiu::Filter::parse(*spec);
    if (!f) return Status::invalid_argument;
    upsert(*f).weight = static_cast<std::uint32_t>(*weight);
    return Status::ok;
  }
  if (msg.custom_name == "setprio") {
    auto spec = msg.args.get("filter");
    auto prio = msg.args.get_int("prio");
    if (!spec || !prio || *prio < 0) return Status::invalid_argument;
    auto f = aiu::Filter::parse(*spec);
    if (!f) return Status::invalid_argument;
    Rule& r = upsert(*f);
    r.prio = static_cast<std::uint32_t>(*prio);
    r.has_prio = true;
    return Status::ok;
  }
  if (msg.custom_name == "setcurve") {
    auto spec = msg.args.get("filter");
    if (!spec) return Status::invalid_argument;
    auto f = aiu::Filter::parse(*spec);
    if (!f) return Status::invalid_argument;
    // Same units as the hfsc addclass message: bits/sec and microseconds.
    ServiceCurve sc;
    sc.m1 = static_cast<double>(msg.args.get_int_or("m1_bps", 0)) / 8.0;
    sc.d = static_cast<double>(msg.args.get_int_or("d_us", 0)) * 1000.0;
    sc.m2 = static_cast<double>(msg.args.get_int_or("m2_bps", 0)) / 8.0;
    if (sc.zero()) return Status::invalid_argument;
    Rule& r = upsert(*f);
    r.curve = sc;
    r.has_curve = true;
    return Status::ok;
  }
  if (msg.custom_name == "stats") {
    reply.text =
        "queues=" + std::to_string(queues_.size()) +
        " fallback=" + std::to_string(fallback_.size()) +
        " backlog_pkts=" + std::to_string(backlog_pkts_) +
        " backlog_bytes=" + std::to_string(backlog_bytes_) +
        " drops=" + std::to_string(drops_.load(std::memory_order_relaxed)) +
        " rotations=" +
        std::to_string(rotations_.load(std::memory_order_relaxed)) +
        " bucket_scans=" +
        std::to_string(bucket_scans_.load(std::memory_order_relaxed)) +
        " far=" + std::to_string(far_.size());
    return Status::ok;
  }
  if (msg.custom_name == "ranks") {
    const char* fn = cfg_.rank == RankFn::prio     ? "prio"
                     : cfg_.rank == RankFn::vtime ? "vtime"
                                                  : "deadline";
    reply.text = std::string("rank=") + fn +
                 " gran=" + std::to_string(gran_) +
                 " horizon=" + std::to_string(horizon_) +
                 " base=" + std::to_string(base_) +
                 " vtime=" + std::to_string(vtime_) +
                 " shaped=" + (cfg_.shaped ? "1" : "0") +
                 " rules=" + std::to_string(rules_.size());
    return Status::ok;
  }
  if (msg.custom_name == "occupancy") {
    const Debug d = debug();
    reply.text = "cur_buckets=" + std::to_string(d.cur_occupied) +
                 " ovf_buckets=" + std::to_string(d.ovf_occupied) +
                 " far=" + std::to_string(d.far) +
                 " active_flows=" + std::to_string(d.active_flows) +
                 " backlog_pkts=" + std::to_string(backlog_pkts_);
    return Status::ok;
  }
  (void)reply;
  return Status::unsupported;
}

// ---------------------------------------------------------------------------
// Observability / property-test hooks.

EiffelInstance::Debug EiffelInstance::debug() const {
  Debug d;
  d.base = base_;
  d.vtime = vtime_;
  d.horizon = horizon_;
  d.gran = gran_;
  for (std::size_t w = 0; w < cur_.l1.size(); ++w) {
    d.cur_occupied += static_cast<std::size_t>(std::popcount(cur_.l1[w]));
    d.ovf_occupied += static_cast<std::size_t>(std::popcount(ovf_.l1[w]));
  }
  d.far = far_.size();
  d.active_flows = active_flows_;
  d.queues = queues_.size();
  d.fallback = fallback_.size();
  return d;
}

bool EiffelInstance::validate(std::string* why, bool deep) const {
  auto fail = [why](std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  };
  // Level-0 <-> level-1 coherence (cheap; runs after every op in the soak).
  for (const Ring* r : {&cur_, &ovf_}) {
    for (std::size_t w = 0; w < r->l1.size(); ++w) {
      const bool bit = (r->l0 >> w) & 1;
      if (bit != (r->l1[w] != 0))
        return fail("l0/l1 mismatch at word " + std::to_string(w));
    }
  }
  if (!deep) return true;

  // Full structure walk: bitmap vs bucket lists, link integrity, rank ->
  // bucket mapping, flow/packet conservation.
  std::size_t flows_seen = 0;
  const Ring* rings[2] = {&cur_, &ovf_};
  const Where wh[2] = {Where::cur, Where::ovf};
  for (int ri = 0; ri < 2; ++ri) {
    const Ring& r = *rings[ri];
    const std::uint64_t ring_base =
        base_ + (ri == 1 ? static_cast<std::uint64_t>(horizon_) : 0);
    for (std::size_t i = 0; i < horizon_; ++i) {
      const bool bit = (r.l1[i >> 6] >> (i & 63)) & 1;
      const Bucket& bk = r.buckets[i];
      if (bit != (bk.head != nullptr))
        return fail("l1 bit " + std::to_string(i) + " vs bucket head");
      if ((bk.head == nullptr) != (bk.tail == nullptr))
        return fail("bucket " + std::to_string(i) + " head/tail skew");
      const FlowQueue* prev = nullptr;
      for (const FlowQueue* q = bk.head; q; q = q->bnext) {
        if (q->bprev != prev)
          return fail("bucket " + std::to_string(i) + " bad bprev");
        if (q->where != wh[ri])
          return fail("bucket " + std::to_string(i) + " wrong where tag");
        if (q->rank != ring_base + i)
          return fail("bucket " + std::to_string(i) + " rank " +
                      std::to_string(q->rank) + " != " +
                      std::to_string(ring_base + i));
        if (q->pkts.empty())
          return fail("queued flow with no packets");
        prev = q;
        ++flows_seen;
      }
      if (prev != bk.tail)
        return fail("bucket " + std::to_string(i) + " tail mismatch");
    }
  }
  for (const FlowQueue* q : far_) {
    if (q->where != Where::far) return fail("far entry with wrong tag");
    if (q->rank < base_ + 2 * horizon_)
      return fail("far entry inside the window");
    if (q->pkts.empty()) return fail("far flow with no packets");
    ++flows_seen;
  }
  if (flows_seen != active_flows_)
    return fail("active_flows " + std::to_string(active_flows_) + " != seen " +
                std::to_string(flows_seen));
  std::size_t pkts = 0, bytes = 0, idle = 0;
  for (const auto& q : queues_) {
    pkts += q->pkts.size();
    for (const auto& p : q->pkts) bytes += p->size();
    if (q->where == Where::idle) {
      if (!q->pkts.empty()) return fail("idle flow holding packets");
      ++idle;
    }
  }
  if (pkts != backlog_pkts_)
    return fail("backlog_pkts " + std::to_string(backlog_pkts_) + " != " +
                std::to_string(pkts));
  if (bytes != backlog_bytes_)
    return fail("backlog_bytes " + std::to_string(backlog_bytes_) + " != " +
                std::to_string(bytes));
  if (idle + flows_seen != queues_.size())
    return fail("queue count " + std::to_string(queues_.size()) +
                " != idle+active " + std::to_string(idle + flows_seen));
  return true;
}

// ---------------------------------------------------------------------------

std::unique_ptr<plugin::PluginInstance> EiffelPlugin::make_instance(
    const plugin::Config& cfg) {
  EiffelInstance::Config c;
  if (auto rank = cfg.get("rank")) {
    if (*rank == "prio")
      c.rank = EiffelInstance::RankFn::prio;
    else if (*rank == "vtime")
      c.rank = EiffelInstance::RankFn::vtime;
    else if (*rank == "deadline")
      c.rank = EiffelInstance::RankFn::deadline;
    else
      return nullptr;
  }
  c.horizon = static_cast<std::size_t>(cfg.get_int_or("horizon", 2048));
  c.gran = static_cast<std::uint64_t>(cfg.get_int_or("gran", 0));
  c.per_flow_limit = static_cast<std::size_t>(cfg.get_int_or("limit", 128));
  c.default_weight =
      static_cast<std::uint32_t>(cfg.get_int_or("weight", 1));
  c.default_prio = static_cast<std::uint32_t>(cfg.get_int_or("prio", 0));
  c.shaped = cfg.get_int_or("shaped", 0) != 0;
  // Default service curve for deadline mode, hfsc units (bps / us).
  const double m1 = static_cast<double>(cfg.get_int_or("m1_bps", 100'000'000));
  const double d = static_cast<double>(cfg.get_int_or("d_us", 0));
  const double m2 = static_cast<double>(cfg.get_int_or("m2_bps", 100'000'000));
  c.default_curve = ServiceCurve{m1 / 8.0, d * 1000.0, m2 / 8.0};
  if (c.horizon == 0 || c.per_flow_limit == 0 || c.default_weight == 0)
    return nullptr;
  return std::make_unique<EiffelInstance>(c);
}

}  // namespace rp::sched

#include "l7/l7_plugins.hpp"

#include "plugin/loader.hpp"

namespace rp::l7 {

using netbase::Status;

// ---------------------------------------------------------------------------
// l7ids

IdsInstance::IdsInstance(Options opt, std::vector<std::string> patterns,
                         bool alert_on_match, bool log_hits)
    : L7Engine(opt), alert_on_match_(alert_on_match), log_hits_(log_hits) {
  for (auto& p : patterns) ac_.add(std::move(p));
  ac_.build();
}

void IdsInstance::inspect(Conn& c, unsigned dir, const std::uint8_t* data,
                          std::size_t n, std::uint64_t off) {
  if (ac_.pattern_count() == 0) return;
  if (c.mgen != ac_.generation()) {
    // Rule set rebuilt since this connection last matched: the carried
    // state indexes a dead automaton, so restart at the root (a pattern
    // spanning the exact rebuild instant can be missed; nothing else).
    c.mstate[0] = c.mstate[1] = AhoCorasick::kRoot;
    c.mgen = ac_.generation();
  }
  c.mstate[dir] =
      ac_.scan(c.mstate[dir], data, n, off,
               [&](std::uint32_t id, std::uint64_t end) {
                 ++matches_;
                 if (log_hits_ && hit_log_.size() < kMaxHitLog)
                   hit_log_.push_back(
                       {id, static_cast<std::uint8_t>(dir), end});
                 note_finding("match id=" + std::to_string(id) + " pat=" +
                              format_pattern(ac_.pattern(id)) + " dir=" +
                              std::to_string(dir) + " end=" +
                              std::to_string(end));
                 if (alert_on_match_) set_alert(c);
               });
}

Status IdsInstance::custom_message(const plugin::PluginMsg& msg,
                                   plugin::PluginReply& reply) {
  if (msg.custom_name != "rules") return Status::unsupported;
  const std::string op = msg.args.get_or("op", "list");
  if (op == "list") {
    reply.text = "generation=" + std::to_string(ac_.generation()) +
                 " patterns=" + std::to_string(ac_.pattern_count());
    for (std::uint32_t i = 0; i < ac_.pattern_count(); ++i)
      reply.text += "\n" + std::to_string(i) + " " +
                    format_pattern(ac_.pattern(i));
    return Status::ok;
  }
  if (op == "add" || op == "set") {
    auto spec = msg.args.get("patterns");
    if (!spec) return Status::invalid_argument;
    std::vector<std::string> pats;
    if (!parse_patterns(*spec, pats)) return Status::invalid_argument;
    if (op == "set") ac_.clear();
    for (auto& p : pats) ac_.add(std::move(p));
    ac_.build();
    reply.text = "patterns=" + std::to_string(ac_.pattern_count()) +
                 " states=" + std::to_string(ac_.state_count()) +
                 " generation=" + std::to_string(ac_.generation());
    return Status::ok;
  }
  if (op == "clear") {
    ac_.clear();
    ac_.build();
    reply.text = "patterns=0 generation=" + std::to_string(ac_.generation());
    return Status::ok;
  }
  return Status::invalid_argument;
}

void IdsInstance::append_status(std::string& out) const {
  out += "\nids patterns=" + std::to_string(ac_.pattern_count()) +
         " states=" + std::to_string(ac_.state_count()) +
         " generation=" + std::to_string(ac_.generation()) +
         " matches=" + std::to_string(matches_);
}

std::unique_ptr<plugin::PluginInstance> IdsPlugin::make_instance(
    const plugin::Config& cfg) {
  std::vector<std::string> pats;
  if (auto spec = cfg.get("patterns"))
    if (!parse_patterns(*spec, pats)) return nullptr;
  return std::make_unique<IdsInstance>(
      L7Engine::parse_options(cfg), std::move(pats),
      cfg.get_int_or("alert_on_match", 1) != 0,
      cfg.get_int_or("log_hits", 0) != 0);
}

// ---------------------------------------------------------------------------
// l7http

void HttpInstance::inspect(Conn& c, unsigned dir, const std::uint8_t* data,
                           std::size_t n, std::uint64_t off) {
  (void)off;
  if (dir != 0) return;  // requests travel the initiator direction
  if (c.http.done() || c.http.state() == HttpParser::State::not_http) return;
  if (c.http.feed(data, n)) return;  // parser still wants bytes
  if (c.http.done()) {
    ++requests_;
    note_finding("http " + c.http.method() + " " + c.http.target() +
                 " host=" + c.http.host() + " headers=" +
                 std::to_string(c.http.header_count()));
    if (!alert_host_.empty() && c.http.host() == alert_host_)
      set_alert(c);
    else
      set_clean(c);
  } else {
    ++non_http_;
    set_clean(c);  // not HTTP: nothing more this classifier can learn
  }
}

void HttpInstance::append_status(std::string& out) const {
  out += "\nhttp requests=" + std::to_string(requests_) +
         " non_http=" + std::to_string(non_http_) +
         (alert_host_.empty() ? std::string{}
                              : " alert_host=" + alert_host_);
}

std::unique_ptr<plugin::PluginInstance> HttpPlugin::make_instance(
    const plugin::Config& cfg) {
  return std::make_unique<HttpInstance>(L7Engine::parse_options(cfg),
                                        cfg.get_or("alert_host", ""));
}

// ---------------------------------------------------------------------------

RP_REGISTER_PLUGIN(l7ids, [] { return std::make_unique<IdsPlugin>(); });
RP_REGISTER_PLUGIN(l7http, [] { return std::make_unique<HttpPlugin>(); });

void register_l7_plugins() {
  // Static registrations above run at load; this anchor forces the TU in.
}

}  // namespace rp::l7

#include "l7/l7_engine.hpp"

#include "pkt/headers.hpp"
#include "plugin/pcu.hpp"
#include "telemetry/telemetry.hpp"

namespace rp::l7 {

using plugin::Verdict;

const char* to_string(ConnVerdict v) noexcept {
  switch (v) {
    case ConnVerdict::inspecting: return "inspecting";
    case ConnVerdict::clean: return "clean";
    case ConnVerdict::alert: return "alert";
    case ConnVerdict::overflow: return "overflow";
  }
  return "?";
}

L7Engine::Options L7Engine::parse_options(const plugin::Config& cfg) {
  Options o;
  o.per_flow_budget =
      static_cast<std::size_t>(cfg.get_int_or("per_flow_budget", 64 * 1024));
  o.global_budget = static_cast<std::size_t>(
      cfg.get_int_or("global_budget", 8 * 1024 * 1024));
  o.inspect_limit =
      static_cast<std::uint64_t>(cfg.get_int_or("inspect_limit", 16 * 1024));
  o.max_conns = static_cast<std::size_t>(cfg.get_int_or("max_conns", 4096));
  o.offload = cfg.get_int_or("offload", 1) != 0;
  o.drop_on_alert = cfg.get_int_or("drop_on_alert", 0) != 0;
  return o;
}

L7Engine::~L7Engine() {
  telemetry::metrics().remove_owner(this);
  // Any handle still alive here has a live, bound flow entry (every
  // flow-table removal path fires flow_removed first), so nulling the soft
  // slots is safe and prevents a later callback into a dead instance.
  while (lru_head_) evict_conn(lru_head_, /*touch_slots=*/true);
}

void L7Engine::lru_touch(Conn* c) {
  if (lru_head_ == c) return;
  lru_unlink(c);
  c->lru_next = lru_head_;
  c->lru_prev = nullptr;
  if (lru_head_) lru_head_->lru_prev = c;
  lru_head_ = c;
  if (!lru_tail_) lru_tail_ = c;
}

void L7Engine::lru_unlink(Conn* c) {
  if (c->lru_prev) c->lru_prev->lru_next = c->lru_next;
  if (c->lru_next) c->lru_next->lru_prev = c->lru_prev;
  if (lru_head_ == c) lru_head_ = c->lru_next;
  if (lru_tail_ == c) lru_tail_ = c->lru_prev;
  c->lru_prev = c->lru_next = nullptr;
}

Conn* L7Engine::create_conn(const ConnKey& ck, const pkt::FlowKey& first) {
  if (conns_.size() >= opt_.max_conns && lru_tail_)
    evict_conn(lru_tail_, /*touch_slots=*/true);
  auto conn = std::make_unique<Conn>(opt_.per_flow_budget);
  Conn* c = conn.get();
  c->key = ck;
  c->client_addr = first.src;
  c->client_port = first.sport;
  conns_.emplace(ck, std::move(conn));
  lru_touch(c);
  ctrs_.conns_created.fetch_add(1, std::memory_order_relaxed);
  ctrs_.conns_active.store(conns_.size(), std::memory_order_relaxed);
  return c;
}

void L7Engine::release_handle(Conn& c, unsigned dir) {
  DirHandle* h = c.handles[dir];
  if (!h) return;
  if (h->slot) *h->slot = nullptr;
  delete h;
  c.handles[dir] = nullptr;
  ctrs_.handles_released.fetch_add(1, std::memory_order_relaxed);
}

void L7Engine::try_offload(Conn& c) {
  plugin::Plugin* pl = owner();
  if (!pl || !pl->pcu()) return;
  for (unsigned d = 0; d < 2; ++d) {
    DirHandle* h = c.handles[d];
    if (!h) continue;
    if (pl->pcu()->offload_flow(h->fix, this, pl->type(), h)) {
      // Hook cleared the binding (soft included); just drop the handle.
      delete h;
      c.handles[d] = nullptr;
      ctrs_.handles_offloaded.fetch_add(1, std::memory_order_relaxed);
    } else {
      ctrs_.offload_fail.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void L7Engine::release_buffers(Conn& c, bool overflow) {
  const std::size_t held = c.buffered();
  buffered_total_ -= held;
  c.streams[0].release(overflow);
  c.streams[1].release(overflow);
  ctrs_.buffered_bytes.store(buffered_total_, std::memory_order_relaxed);
}

void L7Engine::evict_conn(Conn* c, bool touch_slots) {
  for (unsigned d = 0; d < 2; ++d) {
    DirHandle* h = c->handles[d];
    if (!h) continue;
    if (touch_slots && h->slot) *h->slot = nullptr;
    delete h;
    c->handles[d] = nullptr;
    ctrs_.handles_released.fetch_add(1, std::memory_order_relaxed);
  }
  buffered_total_ -= c->buffered();
  lru_unlink(c);
  conns_.erase(c->key);  // frees the Conn
  ctrs_.conns_evicted.fetch_add(1, std::memory_order_relaxed);
  ctrs_.conns_active.store(conns_.size(), std::memory_order_relaxed);
  ctrs_.buffered_bytes.store(buffered_total_, std::memory_order_relaxed);
}

void L7Engine::enforce_global_budget(Conn* current) {
  while (buffered_total_ > opt_.global_budget) {
    Conn* victim = lru_tail_;
    while (victim && victim == current) victim = victim->lru_prev;
    if (!victim) {
      if (!current) return;
      // The current connection alone blew the global budget: fail open on
      // it rather than evicting the state mid-packet.
      if (current->verdict == ConnVerdict::inspecting) {
        current->verdict = ConnVerdict::overflow;
        ctrs_.verdict_overflow.fetch_add(1, std::memory_order_relaxed);
      }
      release_buffers(*current, /*overflow=*/true);
      return;
    }
    evict_conn(victim, /*touch_slots=*/true);
  }
}

void L7Engine::flow_removed(void* flow_soft) {
  auto* h = static_cast<DirHandle*>(flow_soft);
  if (h->conn && h->conn->handles[h->dir] == h)
    h->conn->handles[h->dir] = nullptr;
  delete h;
  ctrs_.handles_flow_removed.fetch_add(1, std::memory_order_relaxed);
}

Verdict L7Engine::handle_packet(pkt::Packet& p, void** flow_soft) {
  ensure_metrics();
  Local l;
  Verdict v = process(p, flow_soft, l);
  flush(l);
  return v;
}

void L7Engine::handle_burst(plugin::PacketRun& run) {
  ensure_metrics();
  Local l;
  for (std::size_t i = 0; i < run.size(); ++i) {
    Verdict v = process(run.packet(i), run.soft(i), l);
    if (v != Verdict::cont) run.set_verdict(i, v);
  }
  flush(l);
}

Verdict L7Engine::process(pkt::Packet& p, void** soft, Local& l) {
  ++l.packets;
  if (!p.key_valid ||
      p.key.proto != static_cast<std::uint8_t>(pkt::IpProto::tcp)) {
    ++l.non_tcp;
    return Verdict::cont;
  }
  pkt::TcpHeader tcp;
  if (p.size() < p.l4_offset ||
      !tcp.parse({p.data() + p.l4_offset, p.size() - p.l4_offset}) ||
      p.l4_offset + tcp.header_len() > p.size()) {
    ++l.non_tcp;
    return Verdict::cont;
  }
  const std::uint8_t* payload = p.data() + p.l4_offset + tcp.header_len();
  const std::size_t plen = p.size() - p.l4_offset - tcp.header_len();
  const bool syn = (tcp.flags & 0x02) != 0;

  Conn* c;
  unsigned dir;
  auto* h = soft ? static_cast<DirHandle*>(*soft) : nullptr;
  if (h) {
    c = h->conn;
    dir = h->dir;
  } else {
    const ConnKey ck = ConnKey::from(p.key);
    auto it = conns_.find(ck);
    c = it != conns_.end() ? it->second.get() : create_conn(ck, p.key);
    dir = (p.key.src == c->client_addr && p.key.sport == c->client_port) ? 0
                                                                         : 1;
    // Attach the per-direction handle into the flow entry's soft slot, but
    // only when the packet is bound to a real flow entry (with the flow
    // cache disabled the slot is per-lookup scratch — nothing may persist
    // there). A second flow entry mapping to the same direction (same
    // stream seen on another interface) stays unattached and takes the
    // table-lookup path.
    if (soft && p.fix != pkt::kNoFlow && !c->handles[dir]) {
      h = new DirHandle{c, static_cast<std::uint8_t>(dir), soft, p.fix};
      *soft = h;
      c->handles[dir] = h;
      ctrs_.handles_created.fetch_add(1, std::memory_order_relaxed);
    }
  }
  lru_touch(c);

  if (c->verdict != ConnVerdict::inspecting) {
    // Verdict cache hit. A clean connection with a still-attached handle
    // means a previous offload attempt failed (or a fresh flow entry was
    // just bound) — retry so the gate-skip kicks in.
    if (c->verdict == ConnVerdict::clean && opt_.offload) try_offload(*c);
    if (c->verdict == ConnVerdict::alert && opt_.drop_on_alert) {
      ctrs_.alert_drops.fetch_add(1, std::memory_order_relaxed);
      return Verdict::drop;
    }
    return Verdict::cont;
  }

  StreamReassembler& rs = c->streams[dir];
  if (syn) rs.on_syn(tcp.seq);
  if (plen != 0) {
    ++l.segments;
    const std::size_t buf_before = rs.stats().buffered_bytes;
    const std::uint64_t del_before = rs.delivered();
    // A SYN's payload (e.g. fast-open) begins one past the SYN's sequence.
    const bool ok = rs.segment(
        tcp.seq + (syn ? 1 : 0), payload, plen,
        [&](const std::uint8_t* d, std::size_t n, std::uint64_t off) {
          inspect(*c, dir, d, n, off);
        });
    buffered_total_ += rs.stats().buffered_bytes;
    buffered_total_ -= buf_before;
    ctrs_.buffered_bytes.store(buffered_total_, std::memory_order_relaxed);
    l.delivered += rs.delivered() - del_before;
    if (!ok && c->verdict == ConnVerdict::inspecting)
      c->verdict = ConnVerdict::overflow;
  }

  if (c->verdict == ConnVerdict::inspecting && opt_.inspect_limit != 0 &&
      c->delivered() >= opt_.inspect_limit)
    c->verdict = ConnVerdict::clean;

  if (c->verdict != ConnVerdict::inspecting) {
    // Transition made during this packet: settle buffers + verdict cache.
    switch (c->verdict) {
      case ConnVerdict::clean:
        ctrs_.verdict_clean.fetch_add(1, std::memory_order_relaxed);
        release_buffers(*c, /*overflow=*/false);
        if (opt_.offload) try_offload(*c);
        break;
      case ConnVerdict::alert:
        ctrs_.verdict_alert.fetch_add(1, std::memory_order_relaxed);
        release_buffers(*c, /*overflow=*/false);
        if (opt_.drop_on_alert) {
          ctrs_.alert_drops.fetch_add(1, std::memory_order_relaxed);
          return Verdict::drop;
        }
        break;
      case ConnVerdict::overflow:
        ctrs_.verdict_overflow.fetch_add(1, std::memory_order_relaxed);
        release_buffers(*c, /*overflow=*/true);
        break;
      default:
        break;
    }
    return Verdict::cont;
  }

  enforce_global_budget(c);
  return Verdict::cont;
}

void L7Engine::note_finding(std::string text) {
  constexpr std::size_t kKeep = 32;
  findings_.push_back(std::move(text));
  if (findings_.size() > kKeep)
    findings_.erase(findings_.begin(),
                    findings_.begin() + (findings_.size() - kKeep));
}

netbase::Status L7Engine::custom_message(const plugin::PluginMsg& msg,
                                         plugin::PluginReply& reply) {
  (void)msg;
  (void)reply;
  return netbase::Status::unsupported;
}

std::string L7Engine::status_text() const {
  auto g = [](const std::atomic<std::uint64_t>& a) {
    return std::to_string(a.load(std::memory_order_relaxed));
  };
  std::string out;
  out += "conns=" + std::to_string(conns_.size());
  out += " buffered=" + std::to_string(buffered_total_);
  out += "/" + std::to_string(opt_.global_budget);
  out += " per_flow_budget=" + std::to_string(opt_.per_flow_budget);
  out += " inspect_limit=" + std::to_string(opt_.inspect_limit);
  out += " max_conns=" + std::to_string(opt_.max_conns);
  out += std::string(" offload=") + (opt_.offload ? "on" : "off");
  out += std::string(" drop_on_alert=") + (opt_.drop_on_alert ? "on" : "off");
  out += "\npackets=" + g(ctrs_.packets) + " non_tcp=" + g(ctrs_.non_tcp) +
         " segments=" + g(ctrs_.segments) +
         " delivered_bytes=" + g(ctrs_.delivered_bytes);
  out += "\nconns_created=" + g(ctrs_.conns_created) +
         " conns_evicted=" + g(ctrs_.conns_evicted);
  out += "\nhandles created=" + g(ctrs_.handles_created) +
         " flow_removed=" + g(ctrs_.handles_flow_removed) +
         " offloaded=" + g(ctrs_.handles_offloaded) +
         " released=" + g(ctrs_.handles_released);
  out += "\nverdicts clean=" + g(ctrs_.verdict_clean) +
         " alert=" + g(ctrs_.verdict_alert) +
         " overflow=" + g(ctrs_.verdict_overflow) +
         " offload_fail=" + g(ctrs_.offload_fail) +
         " alert_drops=" + g(ctrs_.alert_drops);
  append_status(out);
  return out;
}

netbase::Status L7Engine::handle_message(const plugin::PluginMsg& msg,
                                         plugin::PluginReply& reply) {
  ensure_metrics();
  if (msg.custom_name == "status") {
    reply.text = status_text();
    return netbase::Status::ok;
  }
  if (msg.custom_name == "verdicts") {
    auto g = [](const std::atomic<std::uint64_t>& a) {
      return std::to_string(a.load(std::memory_order_relaxed));
    };
    reply.text = "clean=" + g(ctrs_.verdict_clean) +
                 " alert=" + g(ctrs_.verdict_alert) +
                 " overflow=" + g(ctrs_.verdict_overflow) +
                 " offloaded=" + g(ctrs_.handles_offloaded);
    for (const auto& f : findings_) reply.text += "\n" + f;
    return netbase::Status::ok;
  }
  if (msg.custom_name == "budget") {
    // Optional updates; new per-conn budgets apply to connections created
    // from now on (existing reassemblers keep the cap they were built with).
    if (auto v = msg.args.get_int("global_budget"))
      opt_.global_budget = static_cast<std::size_t>(*v);
    if (auto v = msg.args.get_int("per_flow_budget"))
      opt_.per_flow_budget = static_cast<std::size_t>(*v);
    if (auto v = msg.args.get_int("inspect_limit"))
      opt_.inspect_limit = static_cast<std::uint64_t>(*v);
    if (auto v = msg.args.get_int("max_conns"))
      opt_.max_conns = static_cast<std::size_t>(*v);
    if (auto v = msg.args.get_int("offload")) opt_.offload = *v != 0;
    if (auto v = msg.args.get_int("drop_on_alert"))
      opt_.drop_on_alert = *v != 0;
    enforce_global_budget(nullptr);
    reply.text = "per_flow_budget=" + std::to_string(opt_.per_flow_budget) +
                 " global_budget=" + std::to_string(opt_.global_budget) +
                 " inspect_limit=" + std::to_string(opt_.inspect_limit) +
                 " max_conns=" + std::to_string(opt_.max_conns) +
                 " offload=" + std::to_string(opt_.offload ? 1 : 0) +
                 " drop_on_alert=" + std::to_string(opt_.drop_on_alert ? 1 : 0) +
                 " buffered=" + std::to_string(buffered_total_);
    return netbase::Status::ok;
  }
  if (msg.custom_name == "reset") {
    std::size_t n = 0;
    while (lru_head_) {
      evict_conn(lru_head_, /*touch_slots=*/true);
      ++n;
    }
    findings_.clear();
    reply.text = "reset " + std::to_string(n) + " conns";
    return netbase::Status::ok;
  }
  return custom_message(msg, reply);
}

const std::string& L7Engine::metric_prefix() {
  ensure_metrics();
  return metric_prefix_;
}

void L7Engine::ensure_metrics() {
  if (metrics_registered_ || !owner()) return;
  metric_prefix_ =
      "l7." + owner()->name() + "." + std::to_string(id()) + ".";
  auto& reg = telemetry::metrics();
  auto add = [&](const char* name, const std::atomic<std::uint64_t>& a) {
    reg.add(metric_prefix_ + name, &a, this);
  };
  add("packets", ctrs_.packets);
  add("non_tcp", ctrs_.non_tcp);
  add("segments", ctrs_.segments);
  add("delivered_bytes", ctrs_.delivered_bytes);
  add("conns_created", ctrs_.conns_created);
  add("conns_evicted", ctrs_.conns_evicted);
  add("conns_active", ctrs_.conns_active);
  add("buffered_bytes", ctrs_.buffered_bytes);
  add("handles_created", ctrs_.handles_created);
  add("handles_flow_removed", ctrs_.handles_flow_removed);
  add("handles_offloaded", ctrs_.handles_offloaded);
  add("handles_released", ctrs_.handles_released);
  add("verdict_clean", ctrs_.verdict_clean);
  add("verdict_alert", ctrs_.verdict_alert);
  add("verdict_overflow", ctrs_.verdict_overflow);
  add("offload_fail", ctrs_.offload_fail);
  add("alert_drops", ctrs_.alert_drops);
  metrics_registered_ = true;
}

void L7Engine::flush(const Local& l) {
  if (l.packets)
    ctrs_.packets.fetch_add(l.packets, std::memory_order_relaxed);
  if (l.non_tcp)
    ctrs_.non_tcp.fetch_add(l.non_tcp, std::memory_order_relaxed);
  if (l.segments)
    ctrs_.segments.fetch_add(l.segments, std::memory_order_relaxed);
  if (l.delivered)
    ctrs_.delivered_bytes.fetch_add(l.delivered, std::memory_order_relaxed);
}

}  // namespace rp::l7

// L7Engine — the stateful inspection core behind the l7 gate's plugins.
//
// The engine is a PluginInstance that hangs heavyweight per-connection soft
// state off the AIU flow table: each direction's flow entry stores a small
// heap DirHandle in its l7-gate soft slot, both handles pointing at one
// shared Conn that owns the two per-direction stream reassemblers and the
// inspector state (Aho-Corasick match state / HTTP parser). Segments are
// normalized into in-order byte streams (first-wins overlap policy, see
// reassembler.hpp) and handed to the subclass inspect() hook, so pattern
// matching and protocol parsing are immune to segmentation, reordering and
// overlap-rewrite evasion by construction.
//
// Verdict cache: a connection starts `inspecting`; once the subclass rules
// it `clean` (or the inspect_limit byte budget is reached with nothing
// found) the engine *offloads* the flow — it asks the AIU, through the
// PCU's flow-offload hook, to clear this gate's binding on both direction
// entries, so the bound_mask gate skip makes further packets of the flow
// bypass the gate entirely. `alert` flags the connection (optionally
// dropping its packets); `overflow` is the fail-open verdict when a
// direction's reassembly budget is exhausted.
//
// Budgets: per-direction out-of-order buffer cap (reassembler), a global
// buffered-byte budget with oldest-first (LRU) connection eviction, and a
// connection-count cap. All eviction paths release handles engine-side by
// nulling the flow-table soft slot — never leaving a dangling pointer for a
// later flow_removed.
//
// Threading: all state is private to the owning instance; under the sharded
// datapath each shard constructs its own instances (shard-private by
// construction), so nothing here locks. Exported counters are atomics only
// because the control thread reads them live (docs/concurrency.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "l7/aho_corasick.hpp"
#include "l7/http_parser.hpp"
#include "l7/reassembler.hpp"
#include "plugin/plugin.hpp"

namespace rp::l7 {

// Canonical direction-independent connection key: the six-tuple's endpoint
// pairs sorted so both directions of a connection map to one Conn. The
// incoming interface is deliberately excluded — the two directions of one
// TCP connection arrive on different interfaces of a router.
struct ConnKey {
  netbase::U128 a{}, b{};  // IpAddr::key() form, (a,ap) <= (b,bp)
  std::uint16_t ap{0}, bp{0};
  std::uint8_t proto{0};

  friend bool operator==(const ConnKey&, const ConnKey&) = default;

  static ConnKey from(const pkt::FlowKey& k) noexcept {
    ConnKey c;
    c.proto = k.proto;
    const netbase::U128 s = k.src.key(), d = k.dst.key();
    if (s < d || (s == d && k.sport <= k.dport)) {
      c.a = s; c.ap = k.sport; c.b = d; c.bp = k.dport;
    } else {
      c.a = d; c.ap = k.dport; c.b = s; c.bp = k.sport;
    }
    return c;
  }

  std::size_t hash() const noexcept {
    std::uint64_t h = a.hi ^ (a.lo * 0x9e3779b97f4a7c15ULL);
    h ^= b.hi * 0xc2b2ae3d27d4eb4fULL;
    h ^= b.lo + (h << 6) + (h >> 2);
    h ^= (std::uint64_t{ap} << 24) ^ (std::uint64_t{bp} << 8) ^ proto;
    h ^= h >> 29;
    h *= 0xff51afd7ed558ccdULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};
struct ConnKeyHash {
  std::size_t operator()(const ConnKey& k) const noexcept { return k.hash(); }
};

enum class ConnVerdict : std::uint8_t { inspecting, clean, alert, overflow };
const char* to_string(ConnVerdict v) noexcept;

struct Conn;

// The per-direction soft-state handle stored in a flow entry's l7 gate
// slot. `slot` points back at that soft slot so engine-side eviction can
// null it (a live handle's flow entry is guaranteed live and bound: every
// flow-table removal path fires flow_removed, which deletes the handle).
struct DirHandle {
  Conn* conn{nullptr};
  std::uint8_t dir{0};
  void** slot{nullptr};
  pkt::FlowIndex fix{pkt::kNoFlow};
};

struct Conn {
  explicit Conn(std::size_t dir_budget)
      : streams{StreamReassembler(dir_budget), StreamReassembler(dir_budget)} {}

  ConnKey key{};
  // Direction 0's sender = connection initiator (first segment seen).
  netbase::IpAddr client_addr{};
  std::uint16_t client_port{0};

  StreamReassembler streams[2];
  DirHandle* handles[2]{nullptr, nullptr};
  ConnVerdict verdict{ConnVerdict::inspecting};

  // Inspector state (owned by the subclass hooks; the engine core only
  // zero-initializes it). IDS: streaming automaton state per direction plus
  // the rule-set generation it belongs to. HTTP: the request parser.
  AhoCorasick::State mstate[2]{AhoCorasick::kRoot, AhoCorasick::kRoot};
  std::uint32_t mgen{0};
  HttpParser http;

  std::uint32_t hits{0};  // inspector findings on this connection

  Conn* lru_prev{nullptr};
  Conn* lru_next{nullptr};

  std::uint64_t delivered() const noexcept {
    return streams[0].delivered() + streams[1].delivered();
  }
  std::size_t buffered() const noexcept {
    return streams[0].stats().buffered_bytes + streams[1].stats().buffered_bytes;
  }
};

class L7Engine : public plugin::PluginInstance {
 public:
  struct Options {
    std::size_t per_flow_budget{64 * 1024};  // per-direction ooo buffer cap
    std::size_t global_budget{8 * 1024 * 1024};  // all conns' buffered bytes
    std::uint64_t inspect_limit{16 * 1024};  // bytes/conn; 0 = never give up
    std::size_t max_conns{4096};
    bool offload{true};         // verdict-cache gate-skip on clean
    bool drop_on_alert{false};  // inline IPS mode
  };

  // Exported live via telemetry::metrics() (atomic: control thread reads
  // while a worker increments). Handle-lifecycle counters are the
  // exactly-once audit surface: at quiescence
  //   handles_created == handles_flow_removed + handles_offloaded
  //                      + handles_released.
  struct Counters {
    std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> non_tcp{0};
    std::atomic<std::uint64_t> segments{0};
    std::atomic<std::uint64_t> delivered_bytes{0};
    std::atomic<std::uint64_t> conns_created{0};
    std::atomic<std::uint64_t> conns_evicted{0};
    std::atomic<std::uint64_t> conns_active{0};  // gauge
    std::atomic<std::uint64_t> buffered_bytes{0};  // gauge
    std::atomic<std::uint64_t> handles_created{0};
    std::atomic<std::uint64_t> handles_flow_removed{0};  // via flow_removed
    std::atomic<std::uint64_t> handles_offloaded{0};     // via offload hook
    std::atomic<std::uint64_t> handles_released{0};      // engine-side evict
    std::atomic<std::uint64_t> verdict_clean{0};
    std::atomic<std::uint64_t> verdict_alert{0};
    std::atomic<std::uint64_t> verdict_overflow{0};
    std::atomic<std::uint64_t> offload_fail{0};
    std::atomic<std::uint64_t> alert_drops{0};
  };

  static Options parse_options(const plugin::Config& cfg);

  explicit L7Engine(Options opt) : opt_(opt) {}
  ~L7Engine() override;

  // -- PluginInstance --
  plugin::Verdict handle_packet(pkt::Packet& p, void** flow_soft) override;
  void handle_burst(plugin::PacketRun& run) override;
  void flow_removed(void* flow_soft) override;
  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

  const Options& options() const noexcept { return opt_; }
  const Counters& counters() const noexcept { return ctrs_; }
  std::size_t conn_count() const noexcept { return conns_.size(); }

 protected:
  // Subclass inspection hook: called with contiguous in-order stream bytes
  // of one direction (off = stream offset of data[0]). Runs inside the
  // reassembler's delivery loop: implementations must not touch the
  // reassemblers or evict connections — flag the verdict with set_alert /
  // set_clean and the engine applies it after the segment is fully fed.
  virtual void inspect(Conn& c, unsigned dir, const std::uint8_t* data,
                       std::size_t n, std::uint64_t off) = 0;

  // Subclass-specific control messages ("rules", ...) and status lines.
  virtual netbase::Status custom_message(const plugin::PluginMsg& msg,
                                         plugin::PluginReply& reply);
  virtual void append_status(std::string& out) const { (void)out; }

  // Verdict flags for inspect() (applied after the feed completes).
  void set_alert(Conn& c) noexcept {
    if (c.verdict == ConnVerdict::inspecting) c.verdict = ConnVerdict::alert;
    ++c.hits;
  }
  void set_clean(Conn& c) noexcept {
    if (c.verdict == ConnVerdict::inspecting) c.verdict = ConnVerdict::clean;
  }

  // Bounded log of recent findings, surfaced by `pmgr l7 verdicts`.
  void note_finding(std::string text);

  const std::string& metric_prefix();

 private:
  // Per-call batched counter deltas: handle_burst flushes one atomic add
  // per counter per run instead of per packet.
  struct Local {
    std::uint64_t packets{0}, non_tcp{0}, segments{0}, delivered{0};
  };

  plugin::Verdict process(pkt::Packet& p, void** soft, Local& l);
  Conn* create_conn(const ConnKey& ck, const pkt::FlowKey& first);
  void release_handle(Conn& c, unsigned dir);  // engine-side (nulls the slot)
  void try_offload(Conn& c);
  void evict_conn(Conn* c, bool touch_slots);
  void release_buffers(Conn& c, bool overflow);
  void enforce_global_budget(Conn* current);
  void lru_touch(Conn* c);
  void lru_unlink(Conn* c);
  void ensure_metrics();
  void flush(const Local& l);
  std::string status_text() const;

  Options opt_;
  Counters ctrs_;
  std::unordered_map<ConnKey, std::unique_ptr<Conn>, ConnKeyHash> conns_;
  Conn* lru_head_{nullptr};  // most recently used
  Conn* lru_tail_{nullptr};
  std::size_t buffered_total_{0};
  std::vector<std::string> findings_;  // bounded ring, newest last
  bool metrics_registered_{false};
  std::string metric_prefix_;
};

}  // namespace rp::l7

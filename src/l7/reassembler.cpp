#include "l7/reassembler.hpp"

#include <algorithm>

namespace rp::l7 {

void StreamReassembler::on_syn(std::uint32_t isn) {
  if (stats_.synced) return;
  base_ = isn + 1;  // SYN consumes one sequence number
  stats_.synced = true;
}

void StreamReassembler::release(bool overflow) {
  for (auto& [off, piece] : ooo_) stats_.buffered_bytes -= piece.size();
  ooo_.clear();
  if (overflow) stats_.overflowed = true;
}

bool StreamReassembler::buffer_ooo(std::uint64_t off, const std::uint8_t* data,
                                   std::size_t len) {
  // Clip the incoming range around every buffered piece it overlaps
  // (first-wins: buffered bytes arrived earlier), inserting the surviving
  // gaps as new pieces. Walk pieces that could intersect [off, off+len).
  std::uint64_t cur = off;
  const std::uint64_t end = off + len;
  auto it = ooo_.upper_bound(off);
  if (it != ooo_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > cur) {
      const std::uint64_t pe = prev->first + prev->second.size();
      stats_.trimmed_bytes += std::min(pe, end) - cur;
      cur = pe;
    }
  }
  while (cur < end) {
    std::uint64_t gap_end = end;
    if (it != ooo_.end() && it->first < end)
      gap_end = std::min(gap_end, it->first);
    if (cur < gap_end) {
      const std::size_t n = static_cast<std::size_t>(gap_end - cur);
      if (stats_.buffered_bytes + n > budget_) {
        release(true);
        return false;
      }
      const std::uint8_t* src = data + (cur - off);
      ooo_.emplace(cur, std::vector<std::uint8_t>(src, src + n));
      stats_.buffered_bytes += n;
      ++stats_.ooo_segments;
      cur = gap_end;
    }
    if (it != ooo_.end() && it->first < end) {
      const std::uint64_t pe = it->first + it->second.size();
      stats_.trimmed_bytes += std::min(pe, end) - std::max(it->first, cur);
      cur = std::max(cur, pe);
      ++it;
    }
  }
  return true;
}

}  // namespace rp::l7

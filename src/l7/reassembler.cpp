#include "l7/reassembler.hpp"

#include <algorithm>

namespace rp::l7 {

void StreamReassembler::on_syn(std::uint32_t isn) {
  const std::uint32_t start = isn + 1;  // SYN consumes one sequence number
  if (!stats_.synced) {
    base_ = start;
    stats_.synced = true;
    syn_anchored_ = true;
    return;
  }
  if (syn_anchored_) return;  // true ISN known; a different ISN is ignored
  if (base_ == start) {  // data segment guessed the exact stream start
    syn_anchored_ = true;
    return;
  }
  // The direction synced provisionally off a data segment that outran the
  // handshake. A late SYN whose ISN is a short distance away is this
  // connection's true ISN; a far-away one is unrelated and is ignored.
  const std::uint32_t below = base_ - start;  // SYN below the provisional base
  if (delivered_ == 0 && ooo_.empty()) {
    // Nothing numbered against the provisional base yet (it came from a
    // zero-length probe): adopt the true ISN outright.
    if (std::min(below, start - base_) <= kMaxSynRebase) {
      base_ = start;
      syn_anchored_ = true;
    }
    return;
  }
  if (below == 0 || below > kMaxSynRebase) return;
  syn_anchored_ = true;
  // Too late to renumber — offset 0 under the provisional base was already
  // handed out. Bytes from [start, base_) mapped to ~4 GiB future offsets
  // and can never become deliverable; drop any such buffered pieces instead
  // of pinning the out-of-order budget until eviction. Anything more than
  // 2 GiB past the watermark is beyond every plausible TCP window.
  const std::uint64_t implausible = delivered_ + 0x80000000ull;
  for (auto it = ooo_.lower_bound(implausible); it != ooo_.end();) {
    stats_.buffered_bytes -= it->second.size();
    stats_.trimmed_bytes += it->second.size();
    it = ooo_.erase(it);
  }
}

void StreamReassembler::release(bool overflow) {
  for (auto& [off, piece] : ooo_) stats_.buffered_bytes -= piece.size();
  ooo_.clear();
  if (overflow) stats_.overflowed = true;
}

bool StreamReassembler::buffer_ooo(std::uint64_t off, const std::uint8_t* data,
                                   std::size_t len) {
  // Clip the incoming range around every buffered piece it overlaps
  // (first-wins: buffered bytes arrived earlier), inserting the surviving
  // gaps as new pieces. Walk pieces that could intersect [off, off+len).
  std::uint64_t cur = off;
  const std::uint64_t end = off + len;
  auto it = ooo_.upper_bound(off);
  if (it != ooo_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > cur) {
      const std::uint64_t pe = prev->first + prev->second.size();
      stats_.trimmed_bytes += std::min(pe, end) - cur;
      cur = pe;
    }
  }
  while (cur < end) {
    std::uint64_t gap_end = end;
    if (it != ooo_.end() && it->first < end)
      gap_end = std::min(gap_end, it->first);
    if (cur < gap_end) {
      const std::size_t n = static_cast<std::size_t>(gap_end - cur);
      if (stats_.buffered_bytes + n > budget_) {
        release(true);
        return false;
      }
      const std::uint8_t* src = data + (cur - off);
      ooo_.emplace(cur, std::vector<std::uint8_t>(src, src + n));
      stats_.buffered_bytes += n;
      ++stats_.ooo_segments;
      cur = gap_end;
    }
    if (it != ooo_.end() && it->first < end) {
      const std::uint64_t pe = it->first + it->second.size();
      stats_.trimmed_bytes += std::min(pe, end) - std::max(it->first, cur);
      cur = std::max(cur, pe);
      ++it;
    }
  }
  return true;
}

}  // namespace rp::l7

// Aho-Corasick multi-pattern matcher for the L7 inspection gate.
//
// The automaton is built goto/fail (trie + BFS failure links), then folded
// into a dense DFA so the streaming scan is one table load per byte with no
// failure chasing — the shape IDS engines use for moderate rule sets. Match
// state is a single integer, carried in the per-connection soft state across
// segment boundaries, so a pattern split over TCP segments (or over tiny
// evasion slivers) is still found.
//
// Rule sets are runtime-loadable: add()/clear() stage patterns, build()
// compiles them and bumps the generation. Connections stamp the generation
// with their carried state; a state from an older build restarts at the
// root (documented in docs/l7_inspection.md — a pattern spanning the exact
// rebuild instant can be missed, nothing else changes).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace rp::l7 {

class AhoCorasick {
 public:
  using State = std::int32_t;
  static constexpr State kRoot = 0;

  // Stages a pattern (arbitrary bytes, non-empty) for the next build();
  // returns its pattern id. Duplicate patterns get distinct ids.
  std::uint32_t add(std::string pattern);
  void clear();

  // Compiles the staged set. Safe to call with zero patterns (the scan then
  // never matches). Bumps generation().
  void build();

  std::size_t pattern_count() const noexcept { return patterns_.size(); }
  const std::string& pattern(std::uint32_t id) const { return patterns_[id]; }
  const std::vector<std::string>& patterns() const noexcept {
    return patterns_;
  }
  std::uint32_t generation() const noexcept { return gen_; }
  std::size_t state_count() const noexcept { return next_.size(); }

  // Streaming scan: consumes `n` bytes starting in state `s`, invoking
  // `on_hit(pattern_id, end_offset)` for every match, where end_offset is
  // `base_off` + the index one past the match's last byte (i.e. the stream
  // offset the match ends at). Returns the state to carry forward.
  template <class F>
  State scan(State s, const std::uint8_t* data, std::size_t n,
             std::uint64_t base_off, F&& on_hit) const {
    if (next_.empty()) return kRoot;
    for (std::size_t i = 0; i < n; ++i) {
      s = next_[static_cast<std::size_t>(s)][data[i]];
      if (has_out_[static_cast<std::size_t>(s)])
        for (std::uint32_t id : out_[static_cast<std::size_t>(s)])
          on_hit(id, base_off + i + 1);
    }
    return s;
  }

 private:
  std::vector<std::string> patterns_;
  // Dense DFA: next_[state][byte] -> state; out_[state] lists pattern ids
  // ending there (failure-closure merged in at build time).
  std::vector<std::array<State, 256>> next_;
  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::uint8_t> has_out_;
  std::uint32_t gen_{0};
};

// Parses a comma-separated pattern list with `\xNN` hex escapes (use \x2c
// for a literal comma, \x5c for a backslash). Returns false on a malformed
// escape or an empty element.
bool parse_patterns(std::string_view spec, std::vector<std::string>& out);
// Renders a pattern printably (non-ASCII and separators as \xNN).
std::string format_pattern(std::string_view pat);

}  // namespace rp::l7

// Streaming HTTP/1.x request-line + header classifier for the L7 gate.
//
// Feeds on the client-direction reassembled byte stream, so it is immune to
// segmentation: a request line split across ten tiny segments parses the
// same as one. It extracts the method, target, and version from the request
// line and then scans headers until the blank line, capturing Host and
// User-Agent. Line buffering is bounded (kMaxLine); an over-long line or a
// non-HTTP first line moves the parser to `not_http`, which the engine maps
// to "nothing more to learn here".
//
// This is a classifier, not a proxy: it does not validate the message body,
// chunked encoding, or pipelining — once the first request's header block
// is parsed the verdict is made and the engine stops feeding it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rp::l7 {

class HttpParser {
 public:
  enum class State : std::uint8_t {
    request_line,  // accumulating the first line
    headers,       // request line parsed, scanning headers
    done,          // blank line seen: header block complete
    not_http,      // gave up (malformed / over-long / not HTTP)
  };

  static constexpr std::size_t kMaxLine = 1024;

  // Consumes reassembled client-direction bytes. Returns true while the
  // parser still wants input (request_line / headers).
  bool feed(const std::uint8_t* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (state_ == State::done || state_ == State::not_http) return false;
      const char c = static_cast<char>(data[i]);
      if (c == '\n') {
        std::string_view sv{line_};
        if (!sv.empty() && sv.back() == '\r') sv.remove_suffix(1);
        consume_line(sv);
        line_.clear();
        continue;
      }
      if (line_.size() >= kMaxLine) {
        state_ = State::not_http;
        return false;
      }
      line_.push_back(c);
    }
    return state_ == State::request_line || state_ == State::headers;
  }

  State state() const noexcept { return state_; }
  bool done() const noexcept { return state_ == State::done; }
  const std::string& method() const noexcept { return method_; }
  const std::string& target() const noexcept { return target_; }
  const std::string& version() const noexcept { return version_; }
  const std::string& host() const noexcept { return host_; }
  const std::string& user_agent() const noexcept { return user_agent_; }
  std::uint32_t header_count() const noexcept { return header_count_; }

 private:
  void consume_line(std::string_view line) {
    if (state_ == State::request_line) {
      if (line.empty()) return;  // tolerate leading CRLF (RFC 9112 §2.2)
      const auto sp1 = line.find(' ');
      const auto sp2 = sp1 == std::string_view::npos
                           ? std::string_view::npos
                           : line.find(' ', sp1 + 1);
      if (sp2 == std::string_view::npos ||
          line.substr(sp2 + 1, 5) != "HTTP/") {
        state_ = State::not_http;
        return;
      }
      method_.assign(line.substr(0, sp1));
      target_.assign(line.substr(sp1 + 1, sp2 - sp1 - 1));
      version_.assign(line.substr(sp2 + 1));
      state_ = State::headers;
      return;
    }
    // headers
    if (line.empty()) {
      state_ = State::done;
      return;
    }
    ++header_count_;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) return;
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t'))
      value.remove_prefix(1);
    if (iequal(name, "host")) host_.assign(value);
    else if (iequal(name, "user-agent")) user_agent_.assign(value);
  }

  static bool iequal(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      char x = a[i], y = b[i];
      if (x >= 'A' && x <= 'Z') x += 32;
      if (y >= 'A' && y <= 'Z') y += 32;
      if (x != y) return false;
    }
    return true;
  }

  State state_{State::request_line};
  std::string line_;
  std::string method_, target_, version_, host_, user_agent_;
  std::uint32_t header_count_{0};
};

}  // namespace rp::l7

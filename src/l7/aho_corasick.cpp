#include "l7/aho_corasick.hpp"

#include <deque>

namespace rp::l7 {

std::uint32_t AhoCorasick::add(std::string pattern) {
  patterns_.push_back(std::move(pattern));
  return static_cast<std::uint32_t>(patterns_.size() - 1);
}

void AhoCorasick::clear() {
  patterns_.clear();
  next_.clear();
  out_.clear();
  has_out_.clear();
}

void AhoCorasick::build() {
  // Trie construction. Node 0 is the root; kNoEdge marks absent goto edges
  // until the fail pass fills them in.
  constexpr State kNoEdge = -1;
  next_.clear();
  out_.clear();
  next_.emplace_back();
  next_[0].fill(kNoEdge);
  out_.emplace_back();
  for (std::uint32_t id = 0; id < patterns_.size(); ++id) {
    State s = kRoot;
    for (unsigned char c : patterns_[id]) {
      State t = next_[static_cast<std::size_t>(s)][c];
      if (t == kNoEdge) {
        t = static_cast<State>(next_.size());
        next_.emplace_back();
        next_.back().fill(kNoEdge);
        out_.emplace_back();
        next_[static_cast<std::size_t>(s)][c] = t;
      }
      s = t;
    }
    if (!patterns_[id].empty()) out_[static_cast<std::size_t>(s)].push_back(id);
  }

  // BFS failure links, folding goto+fail into a complete transition table
  // and merging each node's output set with its failure node's (so a hit is
  // reported from whatever state the scan lands in, no suffix walk).
  std::vector<State> fail(next_.size(), kRoot);
  std::deque<State> q;
  for (int c = 0; c < 256; ++c) {
    State t = next_[0][static_cast<std::size_t>(c)];
    if (t == kNoEdge) {
      next_[0][static_cast<std::size_t>(c)] = kRoot;
    } else {
      fail[static_cast<std::size_t>(t)] = kRoot;
      q.push_back(t);
    }
  }
  while (!q.empty()) {
    State s = q.front();
    q.pop_front();
    const State f = fail[static_cast<std::size_t>(s)];
    auto& fo = out_[static_cast<std::size_t>(f)];
    auto& so = out_[static_cast<std::size_t>(s)];
    so.insert(so.end(), fo.begin(), fo.end());
    for (int c = 0; c < 256; ++c) {
      State t = next_[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)];
      const State via_fail =
          next_[static_cast<std::size_t>(f)][static_cast<std::size_t>(c)];
      if (t == kNoEdge) {
        next_[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)] =
            via_fail;
      } else {
        fail[static_cast<std::size_t>(t)] = via_fail;
        q.push_back(t);
      }
    }
  }

  has_out_.assign(next_.size(), 0);
  for (std::size_t i = 0; i < out_.size(); ++i)
    has_out_[i] = out_[i].empty() ? 0 : 1;
  ++gen_;
}

namespace {

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

bool parse_patterns(std::string_view spec, std::vector<std::string>& out) {
  std::string cur;
  std::size_t added = 0;  // patterns appended by THIS call; `out` may be
                          // non-empty on entry and must not vouch for us
  auto flush = [&] {
    if (cur.empty()) return false;
    out.push_back(cur);
    cur.clear();
    ++added;
    return true;
  };
  for (std::size_t i = 0; i < spec.size(); ++i) {
    char c = spec[i];
    if (c == ',') {
      if (!flush()) return false;
      continue;
    }
    if (c == '\\') {
      if (i + 3 >= spec.size() || spec[i + 1] != 'x') return false;
      const int hi = hex_val(spec[i + 2]), lo = hex_val(spec[i + 3]);
      if (hi < 0 || lo < 0) return false;
      cur.push_back(static_cast<char>(hi * 16 + lo));
      i += 3;
      continue;
    }
    cur.push_back(c);
  }
  if (!flush() && added != 0) return false;  // trailing comma
  return added != 0;
}

std::string format_pattern(std::string_view pat) {
  static constexpr char hexd[] = "0123456789abcdef";
  std::string out;
  for (char c : pat) {
    auto u = static_cast<unsigned char>(c);
    if (u >= 0x20 && u < 0x7f && c != ',' && c != '\\' && c != ' ') {
      out.push_back(c);
    } else {
      out += "\\x";
      out.push_back(hexd[u >> 4]);
      out.push_back(hexd[u & 0xf]);
    }
  }
  return out;
}

}  // namespace rp::l7

// Per-direction TCP stream reassembler for the L7 inspection gate.
//
// One instance tracks one direction of one connection: a 32-bit sequence
// base established on SYN (or synced on the first segment seen mid-stream),
// a delivered-byte watermark, and a bounded out-of-order buffer. Segments
// are normalized into a contiguous in-order byte stream handed to the
// inspection callback.
//
// Overlap policy is explicit **first-wins**: the first-arriving copy of any
// byte offset is what the stream delivers. Data below the delivered
// watermark is trimmed; data overlapping buffered out-of-order pieces is
// clipped around them. This is the conservative normalization an inline IDS
// wants — a retransmission with different content cannot rewrite what was
// already inspected, so overlap-rewrite evasion degenerates to the first
// (true) copy. docs/l7_inspection.md discusses the policy and its limits.
//
// Budgets: the out-of-order buffer is capped per direction. When a segment
// would push buffered bytes past the cap, the reassembler enters overflow
// (fail-open): buffers are freed and the stream stops delivering. The
// owning engine maps overflow to a fail-open verdict and counts it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rp::l7 {

class StreamReassembler {
 public:
  struct Stats {
    std::uint64_t delivered_bytes{0};  // handed to the inspector, in order
    std::uint64_t buffered_bytes{0};   // currently held out of order
    std::uint64_t trimmed_bytes{0};    // clipped by first-wins overlap policy
    std::uint64_t ooo_segments{0};     // segments buffered (not in-order)
    bool synced{false};
    bool overflowed{false};
  };

  explicit StreamReassembler(std::size_t budget) : budget_(budget) {}

  // Establishes the sequence base from a SYN (the SYN consumes one sequence
  // number: first payload byte is seq+1). Idempotent for retransmitted SYNs
  // with the same ISN; a different ISN after sync is ignored.
  void on_syn(std::uint32_t isn);

  // Feeds one segment's payload. `deliver(data, len, stream_off)` is invoked
  // zero or more times with contiguous in-order bytes (stream_off is the
  // offset of data[0] from the first payload byte). If no SYN was seen, the
  // first segment syncs the base (mid-stream pickup). Returns false once the
  // direction is in overflow.
  template <class F>
  bool segment(std::uint32_t seq, const std::uint8_t* data, std::size_t len,
               F&& deliver) {
    if (stats_.overflowed) return false;
    if (!stats_.synced) sync(seq);
    if (len == 0) return true;
    // Wrap-safe stream offset; streams < 4 GiB stay in range.
    std::uint64_t off = static_cast<std::uint32_t>(seq - base_);
    return ingest(off, data, len, deliver);
  }

  const Stats& stats() const noexcept { return stats_; }
  std::uint64_t delivered() const noexcept { return stats_.delivered_bytes; }

  // Frees the out-of-order buffer (engine budget reclaim / teardown).
  // `overflow` additionally poisons the direction so it stops delivering.
  void release(bool overflow);

 private:
  void sync(std::uint32_t seq) {
    base_ = seq;
    stats_.synced = true;
  }

  template <class F>
  bool ingest(std::uint64_t off, const std::uint8_t* data, std::size_t len,
              F&& deliver) {
    std::uint64_t end = off + len;
    // First-wins: everything below the delivered watermark is final.
    if (end <= delivered_) {
      stats_.trimmed_bytes += len;
      return true;
    }
    if (off < delivered_) {
      const std::uint64_t cut = delivered_ - off;
      stats_.trimmed_bytes += cut;
      data += cut;
      len -= static_cast<std::size_t>(cut);
      off = delivered_;
    }
    if (off == delivered_) {
      deliver(data, len, off);
      delivered_ += len;
      stats_.delivered_bytes += len;
      drain(deliver);
      return true;
    }
    return buffer_ooo(off, data, len);
  }

  // Delivers buffered pieces that have become contiguous.
  template <class F>
  void drain(F&& deliver) {
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first <= delivered_) {
      const std::uint64_t piece_end = it->first + it->second.size();
      if (piece_end > delivered_) {
        const std::size_t skip =
            static_cast<std::size_t>(delivered_ - it->first);
        const std::size_t n = it->second.size() - skip;
        deliver(it->second.data() + skip, n, delivered_);
        delivered_ += n;
        stats_.delivered_bytes += n;
        stats_.trimmed_bytes += skip;
      } else {
        stats_.trimmed_bytes += it->second.size();
      }
      stats_.buffered_bytes -= it->second.size();
      it = ooo_.erase(it);
    }
  }

  bool buffer_ooo(std::uint64_t off, const std::uint8_t* data,
                  std::size_t len);

  std::size_t budget_;
  std::uint32_t base_{0};
  std::uint64_t delivered_{0};
  // Non-overlapping out-of-order pieces keyed by stream offset. Invariant:
  // pieces never overlap each other or the delivered range (new data is
  // clipped around existing pieces on insert — first-wins).
  std::map<std::uint64_t, std::vector<std::uint8_t>> ooo_;
  Stats stats_;
};

}  // namespace rp::l7

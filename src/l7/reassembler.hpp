// Per-direction TCP stream reassembler for the L7 inspection gate.
//
// One instance tracks one direction of one connection: a 32-bit sequence
// base established on SYN (or synced on the first segment seen mid-stream),
// a delivered-byte watermark, and a bounded out-of-order buffer. Segments
// are normalized into a contiguous in-order byte stream handed to the
// inspection callback. Stream offsets are 64-bit: the 32-bit sequence
// distance from the base is unwrapped against the delivered watermark, so
// streams past 4 GiB keep delivering across sequence wraparound instead of
// silently trimming everything after the wrap.
//
// Overlap policy is explicit **first-wins**: the first-arriving copy of any
// byte offset is what the stream delivers. Data below the delivered
// watermark is trimmed; data overlapping buffered out-of-order pieces is
// clipped around them. This is the conservative normalization an inline IDS
// wants — a retransmission with different content cannot rewrite what was
// already inspected, so overlap-rewrite evasion degenerates to the first
// (true) copy. docs/l7_inspection.md discusses the policy and its limits.
//
// Budgets: the out-of-order buffer is capped per direction. When a segment
// would push buffered bytes past the cap, the reassembler enters overflow
// (fail-open): buffers are freed and the stream stops delivering. The
// owning engine maps overflow to a fail-open verdict and counts it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rp::l7 {

class StreamReassembler {
 public:
  struct Stats {
    std::uint64_t delivered_bytes{0};  // handed to the inspector, in order
    std::uint64_t buffered_bytes{0};   // currently held out of order
    std::uint64_t trimmed_bytes{0};    // clipped by first-wins overlap policy
    std::uint64_t ooo_segments{0};     // segments buffered (not in-order)
    bool synced{false};
    bool overflowed{false};
  };

  explicit StreamReassembler(std::size_t budget) : budget_(budget) {}

  // Largest distance below a provisional mid-stream base at which a late
  // handshake SYN is still treated as this connection's ISN (data that
  // outran a reordered SYN is at most a few windows' worth).
  static constexpr std::uint32_t kMaxSynRebase = 1u << 20;

  // Establishes the sequence base from a SYN (the SYN consumes one sequence
  // number: first payload byte is seq+1). Idempotent for retransmitted SYNs
  // with the same ISN; an unrelated ISN after sync is ignored. A reordered
  // handshake SYN arriving after data forced a mid-stream sync rebases if
  // nothing was numbered yet, and otherwise evicts buffered pieces stranded
  // at implausible pre-base offsets.
  void on_syn(std::uint32_t isn);

  // Feeds one segment's payload. `deliver(data, len, stream_off)` is invoked
  // zero or more times with contiguous in-order bytes (stream_off is the
  // offset of data[0] from the first payload byte). If no SYN was seen, the
  // first segment syncs the base (mid-stream pickup). Returns false once the
  // direction is in overflow.
  template <class F>
  bool segment(std::uint32_t seq, const std::uint8_t* data, std::size_t len,
               F&& deliver) {
    if (stats_.overflowed) return false;
    if (!stats_.synced) sync(seq);
    if (len == 0) return true;
    return ingest(unwrap(seq - base_), data, len, deliver);
  }

  const Stats& stats() const noexcept { return stats_; }
  std::uint64_t delivered() const noexcept { return stats_.delivered_bytes; }

  // Frees the out-of-order buffer (engine budget reclaim / teardown).
  // `overflow` additionally poisons the direction so it stops delivering.
  void release(bool overflow);

 private:
  void sync(std::uint32_t seq) {
    base_ = seq;
    stats_.synced = true;
  }

  // Extends the 32-bit relative offset to 64 bits against the delivered
  // watermark: picks the 4 GiB epoch that lands the offset within ±2 GiB of
  // the watermark, so streams past 4 GiB keep advancing across sequence
  // wraps and late pre-wrap retransmits still trim below it. ±2 GiB is far
  // beyond any TCP window, so the nearest epoch is always the right one.
  std::uint64_t unwrap(std::uint32_t rel) const noexcept {
    std::uint64_t off = (delivered_ & ~std::uint64_t{0xffffffff}) | rel;
    if (off + 0x80000000ull < delivered_) {
      off += 0x100000000ull;
    } else if (off > delivered_ + 0x80000000ull && off >= 0x100000000ull) {
      off -= 0x100000000ull;
    }
    return off;
  }

  template <class F>
  bool ingest(std::uint64_t off, const std::uint8_t* data, std::size_t len,
              F&& deliver) {
    std::uint64_t end = off + len;
    // First-wins: everything below the delivered watermark is final.
    if (end <= delivered_) {
      stats_.trimmed_bytes += len;
      return true;
    }
    if (off < delivered_) {
      const std::uint64_t cut = delivered_ - off;
      stats_.trimmed_bytes += cut;
      data += cut;
      len -= static_cast<std::size_t>(cut);
      off = delivered_;
    }
    if (off == delivered_) {
      // First-wins against buffered pieces too: if an out-of-order piece
      // starts inside this segment, only the prefix up to it is new.
      // Deliver that prefix, let drain() promote the buffered (earlier-
      // arrived) copy, then re-ingest the tail so it is trimmed against the
      // advanced watermark and clipped around any remaining pieces. Without
      // the cap, a later in-order segment spanning a buffered piece would
      // rewrite first-arrived bytes — the overlap evasion this exists for.
      std::size_t n = len;
      auto first = ooo_.begin();
      if (first != ooo_.end() && first->first < end)
        n = static_cast<std::size_t>(first->first - off);
      deliver(data, n, off);
      delivered_ += n;
      stats_.delivered_bytes += n;
      drain(deliver);
      if (n < len) return ingest(off + n, data + n, len - n, deliver);
      return true;
    }
    return buffer_ooo(off, data, len);
  }

  // Delivers buffered pieces that have become contiguous.
  template <class F>
  void drain(F&& deliver) {
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first <= delivered_) {
      const std::uint64_t piece_end = it->first + it->second.size();
      if (piece_end > delivered_) {
        const std::size_t skip =
            static_cast<std::size_t>(delivered_ - it->first);
        const std::size_t n = it->second.size() - skip;
        deliver(it->second.data() + skip, n, delivered_);
        delivered_ += n;
        stats_.delivered_bytes += n;
        stats_.trimmed_bytes += skip;
      } else {
        stats_.trimmed_bytes += it->second.size();
      }
      stats_.buffered_bytes -= it->second.size();
      it = ooo_.erase(it);
    }
  }

  bool buffer_ooo(std::uint64_t off, const std::uint8_t* data,
                  std::size_t len);

  std::size_t budget_;
  std::uint32_t base_{0};
  bool syn_anchored_{false};  // base_ came from (or was confirmed by) a SYN
  std::uint64_t delivered_{0};
  // Non-overlapping out-of-order pieces keyed by stream offset. Invariant:
  // pieces never overlap each other or the delivered range (new data is
  // clipped around existing pieces on insert — first-wins).
  std::map<std::uint64_t, std::vector<std::uint8_t>> ooo_;
  Stats stats_;
};

}  // namespace rp::l7

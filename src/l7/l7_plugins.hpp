// The l7 gate's plugin modules, both built on L7Engine:
//
//   * l7ids  — Aho-Corasick multi-pattern matcher over the reassembled
//     byte streams of both directions. Rules are runtime-loadable (create
//     config or the "rules" message); match state is a single automaton
//     state per direction carried across segment boundaries.
//   * l7http — HTTP/1.x request-line + header classifier on the client
//     direction. Once the header block is parsed (or the stream is clearly
//     not HTTP) the connection is ruled clean and offloaded.
//
// Both inherit the engine's reassembly, budgets, verdict cache/offload, and
// control-message surface; see docs/l7_inspection.md.
#pragma once

#include "l7/l7_engine.hpp"

namespace rp::l7 {

struct MatchHit {
  std::uint32_t pattern{0};
  std::uint8_t dir{0};
  std::uint64_t end{0};  // stream offset one past the match's last byte
  friend bool operator==(const MatchHit&, const MatchHit&) = default;
};

class IdsInstance : public L7Engine {
 public:
  IdsInstance(Options opt, std::vector<std::string> patterns,
              bool alert_on_match, bool log_hits);

  const AhoCorasick& matcher() const noexcept { return ac_; }
  std::uint64_t matches() const noexcept { return matches_; }
  // Full hit log (tests' differential oracle); only kept with log_hits=1.
  const std::vector<MatchHit>& hit_log() const noexcept { return hit_log_; }

 protected:
  void inspect(Conn& c, unsigned dir, const std::uint8_t* data, std::size_t n,
               std::uint64_t off) override;
  netbase::Status custom_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;
  void append_status(std::string& out) const override;

 private:
  static constexpr std::size_t kMaxHitLog = 1 << 20;

  AhoCorasick ac_;
  bool alert_on_match_;
  bool log_hits_;
  std::uint64_t matches_{0};
  std::vector<MatchHit> hit_log_;
};

class HttpInstance : public L7Engine {
 public:
  HttpInstance(Options opt, std::string alert_host)
      : L7Engine(opt), alert_host_(std::move(alert_host)) {}

  std::uint64_t requests() const noexcept { return requests_; }
  std::uint64_t non_http() const noexcept { return non_http_; }

 protected:
  void inspect(Conn& c, unsigned dir, const std::uint8_t* data, std::size_t n,
               std::uint64_t off) override;
  void append_status(std::string& out) const override;

 private:
  std::string alert_host_;  // non-empty: alert on requests to this Host
  std::uint64_t requests_{0};
  std::uint64_t non_http_{0};
};

class IdsPlugin : public plugin::Plugin {
 public:
  IdsPlugin() : Plugin("l7ids", plugin::PluginType::l7) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override;
};

class HttpPlugin : public plugin::Plugin {
 public:
  HttpPlugin() : Plugin("l7http", plugin::PluginType::l7) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override;
};

// Anchors the module's static registrations (see loader.hpp).
void register_l7_plugins();

}  // namespace rp::l7

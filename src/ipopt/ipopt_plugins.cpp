#include "ipopt/ipopt_plugins.hpp"

#include "pkt/headers.hpp"

namespace rp::ipopt {

using netbase::Status;
using plugin::Verdict;

bool for_each_hopopt(const pkt::Packet& p,
                     bool (*fn)(void*, std::uint8_t, std::uint8_t,
                                const std::uint8_t*),
                     void* ctx) {
  if (p.ip_version != netbase::IpVersion::v6) return false;
  auto b = p.bytes();
  if (b.size() < pkt::Ipv6Header::kSize) return false;
  if (b[6] != static_cast<std::uint8_t>(pkt::IpProto::hopopt)) return false;

  std::size_t off = pkt::Ipv6Header::kSize;
  if (off + 2 > b.size()) return false;
  const std::size_t hbh_len = (std::size_t{b[off + 1]} + 1) * 8;
  if (off + hbh_len > b.size()) return false;

  std::size_t i = off + 2;
  const std::size_t end = off + hbh_len;
  while (i < end) {
    const std::uint8_t type = b[i];
    if (type == kOptPad1) {
      ++i;
      continue;
    }
    if (i + 2 > end) return false;
    const std::uint8_t len = b[i + 1];
    if (i + 2 + len > end) return false;
    if (!fn(ctx, type, len, &b[i + 2])) return true;
    i += 2 + std::size_t{len};
  }
  return true;
}

Verdict RouterAlertInstance::handle_packet(pkt::Packet& p, void**) {
  ++packets_;
  for_each_hopopt(
      p,
      [](void* ctx, std::uint8_t type, std::uint8_t, const std::uint8_t*) {
        if (type == kOptRouterAlert)
          ++static_cast<RouterAlertInstance*>(ctx)->alerts_;
        return true;
      },
      this);
  return Verdict::cont;
}

void RouterAlertInstance::handle_burst(plugin::PacketRun& run) {
  packets_ += run.size();
  for (std::size_t i = 0; i < run.size(); ++i) {
    const pkt::Packet& p = run.packet(i);
    if (p.ip_version != netbase::IpVersion::v6) continue;  // no hop-by-hop
    for_each_hopopt(
        p,
        [](void* ctx, std::uint8_t type, std::uint8_t, const std::uint8_t*) {
          if (type == kOptRouterAlert)
            ++static_cast<RouterAlertInstance*>(ctx)->alerts_;
          return true;
        },
        this);
  }
}

Status RouterAlertInstance::handle_message(const plugin::PluginMsg& msg,
                                           plugin::PluginReply& reply) {
  if (msg.custom_name == "stats") {
    reply.text = "packets=" + std::to_string(packets_) +
                 " alerts=" + std::to_string(alerts_);
    return Status::ok;
  }
  return Status::unsupported;
}

Verdict OptCheckInstance::handle_packet(pkt::Packet& p, void**) {
  if (p.ip_version != netbase::IpVersion::v6) return Verdict::cont;
  struct Ctx {
    bool bad{false};
    bool unknown_discard{false};
  } ctx;
  bool walked = for_each_hopopt(
      p,
      [](void* vctx, std::uint8_t type, std::uint8_t len,
         const std::uint8_t* data) {
        auto* c = static_cast<Ctx*>(vctx);
        if (type == kOptPadN) {
          for (std::uint8_t i = 0; i < len; ++i) {
            if (data[i] != 0) {
              c->bad = true;
              return false;
            }
          }
          return true;
        }
        if (type == kOptRouterAlert) return true;  // known
        // RFC 2460 action bits: 00 = skip, anything else = discard.
        if ((type >> 6) != 0) {
          c->unknown_discard = true;
          return false;
        }
        return true;
      },
      &ctx);

  // A present-but-truncated option area is malformed.
  auto b = p.bytes();
  const bool has_hbh =
      p.ip_version == netbase::IpVersion::v6 &&
      b.size() >= pkt::Ipv6Header::kSize &&
      b[6] == static_cast<std::uint8_t>(pkt::IpProto::hopopt);
  if (has_hbh && !walked) {
    ++malformed_;
    return Verdict::drop;
  }
  if (ctx.bad) {
    ++malformed_;
    return Verdict::drop;
  }
  if (ctx.unknown_discard) {
    ++unknown_discards_;
    return Verdict::drop;
  }
  return Verdict::cont;
}

void OptCheckInstance::handle_burst(plugin::PacketRun& run) {
  for (std::size_t i = 0; i < run.size(); ++i) {
    if (run.packet(i).ip_version != netbase::IpVersion::v6)
      continue;  // verdict stays cont, as handle_packet's early-out
    const Verdict v = handle_packet(run.packet(i), run.soft(i));
    if (v != Verdict::cont) run.set_verdict(i, v);
  }
}

void register_ipopt_plugins() {
  plugin::PluginLoader::register_module(
      "rtalert", [] { return std::make_unique<RouterAlertPlugin>(); });
  plugin::PluginLoader::register_module(
      "optcheck", [] { return std::make_unique<OptCheckPlugin>(); });
}

}  // namespace rp::ipopt

// IPv6 option-processing plugins (the paper's first plugin type; "a dozen
// lines of code for an IP option plugin").
//
//  * rtalert  — recognizes the Router Alert hop-by-hop option (RFC 2711)
//               and counts alerted packets (what RSVP processing hooks on).
//  * optcheck — validates the hop-by-hop option area: Pad1/PadN contents
//               and TLV bounds, and applies the RFC 2460 unknown-option
//               action bits (00 skip, else discard).
#pragma once

#include <memory>

#include "plugin/loader.hpp"
#include "plugin/plugin.hpp"

namespace rp::ipopt {

// Walks the hop-by-hop options area of `p` if present; returns false if the
// packet is not IPv6 or has no hop-by-hop header. `fn(type, len, data)` is
// called per option (excluding Pad1) and may return false to stop.
bool for_each_hopopt(const pkt::Packet& p,
                     bool (*fn)(void* ctx, std::uint8_t type, std::uint8_t len,
                                const std::uint8_t* data),
                     void* ctx);

constexpr std::uint8_t kOptPad1 = 0;
constexpr std::uint8_t kOptPadN = 1;
constexpr std::uint8_t kOptRouterAlert = 5;

class RouterAlertInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet& p, void** flow_soft) override;
  // Batch-native: one counter add per run, and the v4 common case (no
  // hop-by-hop header possible) short-circuits without the option walk.
  void handle_burst(plugin::PacketRun& run) override;
  std::uint64_t alerts() const noexcept { return alerts_; }
  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

 private:
  std::uint64_t alerts_{0};
  std::uint64_t packets_{0};
};

class OptCheckInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet& p, void** flow_soft) override;
  // Batch-native: hoists the per-packet virtual dispatch and the non-v6
  // early-out; only drop verdicts are written back.
  void handle_burst(plugin::PacketRun& run) override;
  std::uint64_t malformed() const noexcept { return malformed_; }

 private:
  std::uint64_t malformed_{0};
  std::uint64_t unknown_discards_{0};
};

class RouterAlertPlugin final : public plugin::Plugin {
 public:
  RouterAlertPlugin() : Plugin("rtalert", plugin::PluginType::ipopt) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<RouterAlertInstance>();
  }
};

class OptCheckPlugin final : public plugin::Plugin {
 public:
  OptCheckPlugin() : Plugin("optcheck", plugin::PluginType::ipopt) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<OptCheckInstance>();
  }
};

void register_ipopt_plugins();

}  // namespace rp::ipopt

// BestEffortCore — the "unmodified NetBSD 1.2.1" baseline of Table 3: a
// monolithic best-effort forwarding path with hardwired function calls, no
// gates, no classifier, no flow cache. Parse, validate, route on the
// destination address, decrement TTL, FIFO out.
#pragma once

#include <deque>
#include <vector>

#include "core/datapath.hpp"
#include "core/ip_core.hpp"
#include "netdev/iftable.hpp"
#include "route/routing_table.hpp"

namespace rp::core {

class BestEffortCore final : public DataPath {
 public:
  BestEffortCore(route::RoutingTable& routes, netdev::InterfaceTable& ifs,
                 bool verify_checksum = true, std::size_t fifo_limit = 1024)
      : routes_(routes),
        ifs_(ifs),
        verify_checksum_(verify_checksum),
        fifo_limit_(fifo_limit) {}

  void process(pkt::PacketPtr p) override;
  pkt::PacketPtr next_for_tx(pkt::IfIndex iface, netbase::SimTime now) override;
  bool tx_backlog(pkt::IfIndex iface) const override;

  // ALTQ-style retrofit: replace a port's output queue with an alternate
  // queueing discipline, the way ALTQ patches the stock BSD kernel (the
  // "NetBSD with ALTQ and DRR" row of Table 3). The discipline classifies
  // packets itself (no AIU involved).
  void set_port_scheduler(pkt::IfIndex iface, OutputScheduler* sched) {
    if (scheds_.size() <= iface) scheds_.resize(std::size_t{iface} + 1);
    scheds_[iface] = sched;
  }

  const CoreCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = {}; }

 private:
  std::deque<pkt::PacketPtr>& fifo(pkt::IfIndex iface) {
    if (fifos_.size() <= iface) fifos_.resize(std::size_t{iface} + 1);
    return fifos_[iface];
  }

  OutputScheduler* sched(pkt::IfIndex iface) const {
    return scheds_.size() > iface ? scheds_[iface] : nullptr;
  }

  route::RoutingTable& routes_;
  netdev::InterfaceTable& ifs_;
  bool verify_checksum_;
  std::size_t fifo_limit_;
  std::vector<std::deque<pkt::PacketPtr>> fifos_;
  std::vector<OutputScheduler*> scheds_;
  CoreCounters counters_;
};

}  // namespace rp::core

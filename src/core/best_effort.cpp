#include "core/best_effort.hpp"

#include "netbase/byteorder.hpp"
#include "netbase/checksum.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"

namespace rp::core {

using netbase::IpVersion;

void BestEffortCore::process(pkt::PacketPtr p) {
  ++counters_.received;
  auto fail = [&](DropReason r) {
    ++counters_.drops[static_cast<std::size_t>(r)];
  };

  if (!pkt::extract_flow_key(*p)) return fail(DropReason::malformed);

  std::uint8_t* h = p->data();
  if (p->ip_version == IpVersion::v4) {
    const std::size_t hlen = std::size_t{static_cast<std::size_t>(h[0] & 0x0f)} * 4;
    if (verify_checksum_ && !pkt::Ipv4Header::verify_checksum({h, hlen}))
      return fail(DropReason::bad_checksum);
    if (h[8] <= 1) return fail(DropReason::ttl_expired);
  } else {
    if (h[7] <= 1) return fail(DropReason::ttl_expired);
  }

  const route::NextHop* hop = routes_.lookup(p->key.dst);
  if (!hop || !ifs_.by_index(hop->out_iface)) return fail(DropReason::no_route);
  p->out_iface = hop->out_iface;

  if (p->ip_version == IpVersion::v4) {
    const std::uint16_t old_word = netbase::load_be16(&h[8]);
    --h[8];
    const std::uint16_t new_word = netbase::load_be16(&h[8]);
    const std::uint16_t old_ck = netbase::load_be16(&h[10]);
    netbase::store_be16(&h[10],
                        netbase::checksum_update16(old_ck, old_word, new_word));
  } else {
    --h[7];
  }

  if (OutputScheduler* s = sched(p->out_iface)) {
    ++counters_.forwarded;
    if (!s->enqueue(std::move(p), nullptr, 0)) {
      --counters_.forwarded;
      fail(DropReason::queue_full);
    }
    return;
  }
  auto& q = fifo(p->out_iface);
  if (q.size() >= fifo_limit_) return fail(DropReason::queue_full);
  ++counters_.forwarded;
  q.push_back(std::move(p));
}

pkt::PacketPtr BestEffortCore::next_for_tx(pkt::IfIndex iface,
                                           netbase::SimTime now) {
  if (OutputScheduler* s = sched(iface)) return s->dequeue(now);
  auto& q = fifo(iface);
  if (q.empty()) return nullptr;
  auto p = std::move(q.front());
  q.pop_front();
  return p;
}

bool BestEffortCore::tx_backlog(pkt::IfIndex iface) const {
  if (OutputScheduler* s = sched(iface)) return !s->empty();
  return fifos_.size() > iface && !fifos_[iface].empty();
}

}  // namespace rp::core

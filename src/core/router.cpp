#include "core/router.hpp"

#include <array>

namespace rp::core {

RouterKernel::RouterKernel() : RouterKernel(Options{}) {}

namespace {

telemetry::ExportReason export_reason(aiu::FlowTable::RemoveReason why) {
  using R = aiu::FlowTable::RemoveReason;
  switch (why) {
    case R::recycled: return telemetry::ExportReason::recycled;
    case R::expired: return telemetry::ExportReason::expired;
    case R::purged: return telemetry::ExportReason::purged;
    case R::cleared: return telemetry::ExportReason::cleared;
    case R::removed: break;
  }
  return telemetry::ExportReason::removed;
}

}  // namespace

RouterKernel::RouterKernel(Options opt)
    : loader_(pcu_),
      routes_(opt.route_engine),
      telemetry_(std::make_unique<telemetry::Telemetry>(opt.telemetry)),
      resil_(std::make_unique<resilience::Supervisor>(opt.resilience)),
      aiu_(std::make_unique<aiu::Aiu>(pcu_, clock_, opt.aiu)),
      core_(std::make_unique<IpCore>(*aiu_, routes_, ifs_, clock_,
                                     std::move(opt.core))),
      flow_idle_timeout_(opt.flow_idle_timeout),
      flow_sweep_interval_(opt.flow_sweep_interval) {
  // Freeing a plugin instance must also detach it from any output port it
  // is scheduling (the AIU's hook handles flow/filter references) and drop
  // its resilience guard (breaker state + the cached slot pointer).
  pcu_.add_purge_hook([this](plugin::PluginInstance* inst) {
    core_->detach_scheduler(inst);
    resil_->forget(inst);
  });
  // Telemetry: gate histograms + sampled tracing in the core, and flow-record
  // export whenever a flow-table entry dies (the AIU's soft state already
  // accumulates packets/bytes/first/last — §6's accounting made router-wide).
  core_->set_telemetry(telemetry_.get());
  // Resilience: every gate dispatch runs through the supervisor's guard;
  // breaker-open instances get their flows rebound at burst boundaries.
  resil_->set_aiu(aiu_.get());
  resil_->set_clock(&clock_);
  core_->set_resilience(resil_.get());
  aiu_->flow_table().set_remove_hook(
      [this](const aiu::FlowRecord& r, aiu::FlowTable::RemoveReason why) {
        telemetry_->flow_closed({r.key, r.packets, r.bytes, r.first_seen,
                                 r.last_used, export_reason(why)});
      });
}

RouterKernel::~RouterKernel() = default;

netdev::SimNic& RouterKernel::add_interface(std::string name,
                                            std::uint64_t bandwidth_bps) {
  return ifs_.add(std::move(name), bandwidth_bps);
}

void RouterKernel::inject(netbase::SimTime t, pkt::IfIndex iface,
                          pkt::PacketPtr p) {
  events_.emplace(std::make_pair(t, seq_++),
                  Event{Event::Kind::arrival, iface, std::move(p)});
}

void RouterKernel::drain_port(pkt::IfIndex iface) {
  netdev::SimNic* nic = ifs_.by_index(iface);
  if (!nic) return;
  while (nic->tx_idle(clock_.now())) {
    pkt::PacketPtr p = core_->next_for_tx(iface, clock_.now());
    if (!p) {
      // Non-work-conserving scheduler holding packets back: retry when it
      // says a packet may become eligible.
      netbase::SimTime wake = core_->next_tx_wakeup(iface, clock_.now());
      if (wake > clock_.now())
        events_.emplace(std::make_pair(wake, seq_++),
                        Event{Event::Kind::tx_ready, iface, nullptr});
      return;
    }
    netbase::SimTime done = nic->transmit(std::move(p), clock_.now());
    events_.emplace(std::make_pair(done, seq_++),
                    Event{Event::Kind::tx_ready, iface, nullptr});
  }
}

void RouterKernel::dispatch(netbase::SimTime t, Event e) {
  clock_.advance_to(t);
  ++events_processed_;
  switch (e.kind) {
    case Event::Kind::arrival: {
      netdev::SimNic* nic = ifs_.by_index(e.iface);
      if (!nic) return;
      const auto rxq = static_cast<std::uint32_t>(e.iface);
      io_.try_deliver(rxq, e.p, clock_.now());
      // Coalesce the run of same-time arrivals on this interface into the
      // receive ring so the core sees a burst (the interrupt-mitigation
      // window a real driver gives rx_burst). Stop at a time change, a
      // different event kind or interface, or a full ring — ordering and
      // drop behavior stay identical to one-at-a-time dispatch.
      while (!events_.empty()) {
        auto it = events_.begin();
        if (it->first.first != t) break;
        const Event& next = it->second;
        if (next.kind != Event::Kind::arrival || next.iface != e.iface) break;
        if (io_.rx_depth(rxq) >= nic->rx_capacity()) break;
        auto node = events_.extract(it);
        io_.try_deliver(rxq, node.mapped().p, clock_.now());
        ++events_processed_;
      }
      std::array<pkt::PacketPtr, kRxBurst> burst;
      while (io_.rx_pending(rxq)) {
        const std::size_t n = io_.rx_burst(rxq, burst);
        core_->process_burst({burst.data(), n});
      }
      // The packet may have been queued on any port; drain every port with
      // backlog (ports are few, this is cheap).
      for (pkt::IfIndex i = 0; i < ifs_.size(); ++i)
        if (core_->tx_backlog(i)) drain_port(i);
      // Arm the periodic flow-table sweep while flows are cached.
      if (flow_sweep_interval_ > 0 && !sweep_scheduled_ &&
          aiu_->flow_table().active() > 0) {
        sweep_scheduled_ = true;
        events_.emplace(std::make_pair(clock_.now() + flow_sweep_interval_,
                                       seq_++),
                        Event{Event::Kind::flow_sweep, 0, nullptr});
      }
      break;
    }
    case Event::Kind::tx_ready:
      drain_port(e.iface);
      break;
    case Event::Kind::flow_sweep: {
      flows_expired_ +=
          aiu_->flow_table().expire_idle(clock_.now() - flow_idle_timeout_);
      if (aiu_->flow_table().active() > 0) {
        events_.emplace(std::make_pair(clock_.now() + flow_sweep_interval_,
                                       seq_++),
                        Event{Event::Kind::flow_sweep, 0, nullptr});
      } else {
        sweep_scheduled_ = false;
      }
      break;
    }
  }
}

void RouterKernel::run_until(netbase::SimTime t) {
  while (!events_.empty() && events_.begin()->first.first <= t) {
    auto node = events_.extract(events_.begin());
    dispatch(node.key().first, std::move(node.mapped()));
  }
  clock_.advance_to(t);
}

void RouterKernel::run_to_completion() {
  while (!events_.empty()) {
    auto node = events_.extract(events_.begin());
    dispatch(node.key().first, std::move(node.mapped()));
  }
}

}  // namespace rp::core

// OutputScheduler — the contract between the IP core's packet-scheduling
// gate and scheduler plugins (DRR, H-FSC, WFQ, FIFO, RED).
//
// The scheduling gate differs from the other gates in that the plugin takes
// ownership of the packet (it queues the mbuf): the core calls `enqueue`
// with the flow's soft-state slot — DRR stores its per-flow queue pointer
// there (§5.2/§6.1) — and the router kernel later drains the port by calling
// `dequeue` whenever the link goes idle.
#pragma once

#include "netbase/clock.hpp"
#include "pkt/packet.hpp"
#include "plugin/plugin.hpp"

namespace rp::core {

class OutputScheduler : public plugin::PluginInstance {
 public:
  // Queues the packet. `flow_soft` is the flow-table soft-state slot for
  // this (flow, gate) pair, or nullptr for flow-less traffic (which
  // schedulers must still accept, e.g. into a default queue). Returns false
  // if the packet was dropped (queue limit / RED).
  virtual bool enqueue(pkt::PacketPtr p, void** flow_soft,
                       netbase::SimTime now) = 0;

  // Batch enqueue (the batch-native gate ABI at the scheduling gate): queues
  // `n` packets that all resolved to this scheduler instance on one output
  // port, in arrival order. `softs[i]` is packet i's per-flow soft-state
  // slot (or nullptr), `accepted[i]` reports per-packet admission exactly as
  // enqueue() would have. The default shim loops enqueue(); DRR and H-FSC
  // override it to amortize the per-call preamble across the run.
  virtual void enqueue_burst(pkt::PacketPtr* pkts, void** const* softs,
                             bool* accepted, std::size_t n,
                             netbase::SimTime now) {
    for (std::size_t i = 0; i < n; ++i)
      accepted[i] = enqueue(std::move(pkts[i]), softs[i], now);
  }

  // Next packet to put on the wire; nullptr if no backlog.
  virtual pkt::PacketPtr dequeue(netbase::SimTime now) = 0;

  virtual bool empty() const = 0;
  virtual std::size_t backlog_packets() const = 0;
  virtual std::size_t backlog_bytes() const = 0;

  // For non-work-conserving disciplines (H-FSC with an upper-limit curve):
  // the earliest future time at which dequeue() may yield a packet even
  // though it returned nullptr just now. -1 means "work conserving, no
  // wakeup needed". The router kernel schedules a retry at this time.
  virtual netbase::SimTime next_wakeup(netbase::SimTime /*now*/) const {
    return -1;
  }

  // The scheduling gate never uses the generic entry point; the core calls
  // enqueue() directly because ownership transfers.
  plugin::Verdict handle_packet(pkt::Packet&, void**) final {
    return plugin::Verdict::consumed;
  }
};

}  // namespace rp::core

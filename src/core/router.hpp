// RouterKernel — ties the subsystems together and runs the discrete-event
// loop: NIC receive rings feed the data path; when an output link goes idle
// the port is drained (FIFO first, then the port's scheduler), which is how
// the packet-scheduling plugins actually shape traffic on the simulated
// links.
//
// Packet processing itself is instantaneous in virtual time (the real CPU
// cost of the data path is what the benches measure with the host clock,
// mirroring the paper's cycle-counter methodology); virtual time advances
// with packet arrivals and link serialization.
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "aiu/aiu.hpp"
#include "core/datapath.hpp"
#include "core/ip_core.hpp"
#include "io/io_backend.hpp"
#include "netdev/iftable.hpp"
#include "plugin/loader.hpp"
#include "plugin/pcu.hpp"
#include "resilience/resilience.hpp"
#include "route/routing_table.hpp"
#include "telemetry/telemetry.hpp"

namespace rp::core {

class RouterKernel {
 public:
  struct Options {
    aiu::Aiu::Options aiu{};
    CoreConfig core{};
    std::string route_engine{"bsl"};
    // §3.2: "If a cached flow remains idle for an extended period, its
    // cached entry in the flow table may be removed." The kernel sweeps the
    // flow table every `flow_sweep_interval` of virtual time and expires
    // entries idle longer than `flow_idle_timeout`. 0 disables sweeping.
    netbase::SimTime flow_idle_timeout{30 * netbase::kNsPerSec};
    netbase::SimTime flow_sweep_interval{netbase::kNsPerSec};
    telemetry::Telemetry::Options telemetry{};
    resilience::Supervisor::Options resilience{};
  };

  // Receive bursts: how many ring packets are handed to the core at once
  // (matches the AIU's per-chunk burst width).
  static constexpr std::size_t kRxBurst = aiu::Aiu::kMaxBurst;

  RouterKernel();
  explicit RouterKernel(Options opt);
  ~RouterKernel();

  // -- subsystem access --
  netbase::SimClock& clock() noexcept { return clock_; }
  plugin::PluginControlUnit& pcu() noexcept { return pcu_; }
  plugin::PluginLoader& loader() noexcept { return loader_; }
  aiu::Aiu& aiu() noexcept { return *aiu_; }
  netdev::InterfaceTable& interfaces() noexcept { return ifs_; }
  // The single-queue device backend the event loop drains rx through (one
  // queue per NIC; see io/io_backend.hpp for the multi-queue sibling).
  io::IoBackend& io() noexcept { return io_; }
  route::RoutingTable& routes() noexcept { return routes_; }
  IpCore& core() noexcept { return *core_; }
  telemetry::Telemetry& telemetry() noexcept { return *telemetry_; }
  resilience::Supervisor& resilience() noexcept { return *resil_; }

  // Convenience: add a NIC (see InterfaceTable::add).
  netdev::SimNic& add_interface(std::string name,
                                std::uint64_t bandwidth_bps = 155'000'000);

  // -- event loop --

  // Schedules an external packet arrival on `iface` at virtual time `t`.
  void inject(netbase::SimTime t, pkt::IfIndex iface, pkt::PacketPtr p);

  // Runs all events with time <= t; the clock ends at max(now, t).
  void run_until(netbase::SimTime t);
  // Runs until no events remain (all queues drained).
  void run_to_completion();

  bool idle() const noexcept { return events_.empty(); }
  std::size_t events_processed() const noexcept { return events_processed_; }
  std::size_t flows_expired() const noexcept { return flows_expired_; }

 private:
  struct Event {
    enum class Kind { arrival, tx_ready, flow_sweep } kind;
    pkt::IfIndex iface;
    pkt::PacketPtr p;
  };
  // Keyed by (time, sequence) so simultaneous events keep FIFO order.
  using EventQueue = std::map<std::pair<netbase::SimTime, std::uint64_t>, Event>;

  void dispatch(netbase::SimTime t, Event e);
  void drain_port(pkt::IfIndex iface);

  netbase::SimClock clock_;
  plugin::PluginControlUnit pcu_;
  plugin::PluginLoader loader_;
  netdev::InterfaceTable ifs_;
  io::SimNicBackend io_{ifs_};
  route::RoutingTable routes_;
  // Declared before aiu_: the flow table's remove hook exports records into
  // telemetry during Aiu destruction, so telemetry must outlive it.
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  // Declared before aiu_/core_ (so it outlives every dispatch) but after
  // pcu_ (so its destructor runs while instances are still alive and can
  // null each instance's cached guard slot).
  std::unique_ptr<resilience::Supervisor> resil_;
  std::unique_ptr<aiu::Aiu> aiu_;
  std::unique_ptr<IpCore> core_;

  EventQueue events_;
  std::uint64_t seq_{0};
  std::size_t events_processed_{0};
  netbase::SimTime flow_idle_timeout_{0};
  netbase::SimTime flow_sweep_interval_{0};
  bool sweep_scheduled_{false};
  std::size_t flows_expired_{0};
};

}  // namespace rp::core

// The IPv4/IPv6 core (Section 3.1): the streamlined, stable part of the
// networking subsystem. It interacts with the (simulated) devices, parses
// and validates headers, decrements TTL/hop-limit with an incremental
// checksum update, consults the routing table — and at each extension point
// runs a *gate* that branches to whatever plugin instance the AIU resolves
// for the packet's flow (Section 3.2).
//
// Gates in the current core mirror the paper's: IPv6 option processing,
// IP security, and packet scheduling, plus the routing/L4-switching gate
// (paper §8) and optional stats/congestion/firewall gates. The set and
// order of pre-routing gates is configurable.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "aiu/aiu.hpp"
#include "core/datapath.hpp"
#include "core/scheduler_base.hpp"
#include "netdev/iftable.hpp"
#include "pkt/sanitize.hpp"
#include "route/routing_table.hpp"
#include "telemetry/telemetry.hpp"

namespace rp::resilience {
class Supervisor;
}

namespace rp::core {

enum class DropReason : std::uint8_t {
  none = 0,
  malformed,
  bad_checksum,
  ttl_expired,
  no_route,
  policy,        // gate plugin returned Verdict::drop
  queue_full,    // scheduler refused the packet
  too_big,       // exceeds the output MTU and cannot be fragmented
  plugin_fault,  // resilience containment: fault/bypass at a fail-closed gate
  kCount,
};

constexpr std::string_view to_string(DropReason r) noexcept {
  switch (r) {
    case DropReason::none: return "none";
    case DropReason::malformed: return "malformed";
    case DropReason::bad_checksum: return "bad_checksum";
    case DropReason::ttl_expired: return "ttl_expired";
    case DropReason::no_route: return "no_route";
    case DropReason::policy: return "policy";
    case DropReason::queue_full: return "queue_full";
    case DropReason::too_big: return "too_big";
    case DropReason::plugin_fault: return "plugin_fault";
    case DropReason::kCount: break;
  }
  return "unknown";
}

struct CoreConfig {
  // Ingress sanitization (pkt/sanitize.hpp): canonical validation of every
  // length field and chain before classification. On by default; the off
  // switch exists for measuring its cost, not for production use.
  bool sanitize{true};
  bool verify_ipv4_checksum{true};
  bool decrement_ttl{true};
  bool emit_icmp_errors{false};
  // Gates run before the route lookup, in order. The routing gate runs with
  // the route lookup and the sched gate at output; they need not be listed.
  // The l7 gate (stateful stream inspection, src/l7/) sits after the policy
  // gates so only admitted traffic is reassembled; unbound it costs one
  // bound_mask bit test per chunk (bench_t10_l7 holds it to <= 2% on T3).
  std::vector<plugin::PluginType> input_gates{
      plugin::PluginType::ipopt, plugin::PluginType::ipsec,
      plugin::PluginType::firewall, plugin::PluginType::l7,
      plugin::PluginType::congestion, plugin::PluginType::stats};
  std::size_t port_fifo_limit{1024};  // default per-port FIFO depth
  // Batch-native gate dispatch (docs/plugin_authoring.md §11): partition
  // each resolved burst chunk by (gate, instance) and hand every group to
  // the instance as one handle_burst call, compacting drop/consume splits
  // between gates. Off = the per-packet gate loop; the switch exists so
  // benches and the differential tests can compare both paths in one
  // binary. The grouped path also requires the AIU flow cache (the no-cache
  // ablation hands out aliasing scratch bindings) and falls back to the
  // per-packet loop for single-survivor chunks, so process() is unchanged.
  bool batch_gates{true};
};

struct CoreCounters {
  std::uint64_t received{0};
  std::uint64_t forwarded{0};  // handed to an output port
  std::uint64_t drops[static_cast<std::size_t>(DropReason::kCount)]{};
  std::uint64_t gate_calls{0};
  std::uint64_t icmp_errors_sent{0};
  std::uint64_t fragments_created{0};
  std::uint64_t bursts{0};         // process_burst chunks entered
  std::uint64_t burst_packets{0};  // packets entering via those chunks
  // Grouped (batch-native) gate dispatch. A "group" is one handle_burst
  // call: all packets of a chunk that resolved to the same instance at one
  // gate, in arrival order (batched scheduler enqueues count too).
  // gate_calls above still counts per packet-dispatch, so its meaning —
  // and the breaker windows anchored to it — is unchanged.
  std::uint64_t gate_groups{0};
  std::uint64_t gate_group_pkts{0};
  std::uint64_t fused_bursts{0};  // chunks taken by the template-fused chain
  // Group-size histogram: 1, 2, 3-4, 5-8, 9-16, 17+ packets per group.
  static constexpr std::size_t kGroupHistBuckets = 6;
  std::uint64_t group_size_hist[kGroupHistBuckets]{};
  static constexpr std::size_t group_hist_bucket(std::size_t n) noexcept {
    return n <= 1 ? 0 : n == 2 ? 1 : n <= 4 ? 2 : n <= 8 ? 3 : n <= 16 ? 4 : 5;
  }
  static constexpr std::string_view group_hist_label(std::size_t b) noexcept {
    constexpr std::string_view labels[kGroupHistBuckets] = {
        "1", "2", "3-4", "5-8", "9-16", "17+"};
    return labels[b];
  }
  // Per-check ingress sanitization drops (indexed by pkt::SanitizeCheck;
  // slot 0 / "ok" stays zero) plus packets whose capture padding was
  // trimmed. Sanitize drops are double-counted into drops[malformed] so
  // total_drops() keeps meaning "every packet that went nowhere".
  std::uint64_t sanitize_drops[static_cast<std::size_t>(
      pkt::SanitizeCheck::kCount)]{};
  std::uint64_t sanitize_trimmed{0};

  std::uint64_t dropped(DropReason r) const noexcept {
    return drops[static_cast<std::size_t>(r)];
  }
  std::uint64_t sanitize_dropped(pkt::SanitizeCheck c) const noexcept {
    return sanitize_drops[static_cast<std::size_t>(c)];
  }
  std::uint64_t total_sanitize_drops() const noexcept {
    std::uint64_t n = 0;
    for (auto d : sanitize_drops) n += d;
    return n;
  }
  std::uint64_t total_drops() const noexcept {
    std::uint64_t n = 0;
    for (auto d : drops) n += d;
    return n;
  }
};

class IpCore final : public DataPath {
 public:
  IpCore(aiu::Aiu& aiu, route::RoutingTable& routes,
         netdev::InterfaceTable& ifs, netbase::SimClock& clock);
  IpCore(aiu::Aiu& aiu, route::RoutingTable& routes,
         netdev::InterfaceTable& ifs, netbase::SimClock& clock,
         CoreConfig cfg);

  // Full EISR input path for one received packet; ends with the packet
  // dropped or queued on an output port (scheduler or port FIFO).
  // Implemented as a burst of one so the two entry points cannot diverge.
  void process(pkt::PacketPtr p) override;

  // Batched input path (the tentpole of the burst datapath): validates the
  // whole burst, then resolves every packet's flow binding in one AIU pass
  // (hash-once + bucket/record prefetch + last-flow memo), then runs the
  // unchanged per-packet gate/forwarding machinery — which now always hits
  // the FIX fast path. Gate order, drops, ICMP, fragmentation, and counters
  // are identical to the single-packet path.
  void process_burst(std::span<pkt::PacketPtr> batch) override;

  // Output side, driven by the router kernel when a link goes idle: the
  // port FIFO (control/unscheduled traffic) drains ahead of the scheduler.
  pkt::PacketPtr next_for_tx(pkt::IfIndex iface, netbase::SimTime now) override;
  bool tx_backlog(pkt::IfIndex iface) const override;

  // Earliest future time the port's scheduler may release a packet after
  // next_for_tx returned null while backlogged (non-work-conserving
  // disciplines); -1 if none.
  netbase::SimTime next_tx_wakeup(pkt::IfIndex iface, netbase::SimTime now);

  // Attach a scheduler instance to an output port (pmgr does this after
  // create_instance; per-interface scheduler selection as in §6).
  void set_port_scheduler(pkt::IfIndex iface, OutputScheduler* sched);
  OutputScheduler* port_scheduler(pkt::IfIndex iface);
  // Clears any port still pointing at `inst` (run from the PCU purge hook
  // so freeing an attached scheduler cannot leave a dangling pointer).
  void detach_scheduler(const plugin::PluginInstance* inst) {
    for (auto& pt : ports_)
      if (pt.sched == inst) pt.sched = nullptr;
  }

  const CoreCounters& counters() const noexcept { return counters_; }
  // Resets every CoreCounters field — received/forwarded/drops AND the
  // derived-rate counters (gate_calls, bursts, burst_packets, the grouped
  // dispatch stats) — so a measurement window started after reset is
  // consistent across the process() and process_burst() entry points.
  void reset_counters() noexcept { counters_ = CoreCounters{}; }
  CoreConfig& config() noexcept { return cfg_; }

  // Attach the telemetry subsystem (histograms + sampled tracing recorded
  // around gate dispatch). Null detaches; with RP_TELEMETRY=0 the
  // instrumentation is compiled out and this is inert.
  void set_telemetry(telemetry::Telemetry* t) noexcept { tel_ = t; }
  telemetry::Telemetry* telemetry_sink() const noexcept { return tel_; }

  // Attach the resilience supervisor: gate dispatch then runs through its
  // guard (exception containment, verdict validation, cycle budgets, circuit
  // breakers, fallback policies). Null detaches — plugins run bare, exactly
  // the pre-resilience code path.
  // Attaches the supervisor and points its breaker-window clock at this
  // core's gate-dispatch counter (defined in ip_core.cpp: Supervisor is
  // only forward-declared here).
  void set_resilience(resilience::Supervisor* s) noexcept;
  resilience::Supervisor* resilience_sink() const noexcept { return res_; }

 private:
  struct Port {
    OutputScheduler* sched{nullptr};
    std::deque<pkt::PacketPtr> fifo;
  };

  // Stage 1 of the input path: parse + header validation (checksum, TTL).
  // On failure the packet is dropped (slot nulled) and false returned.
  bool validate(pkt::PacketPtr& p);
  // Fused stage 1 used by the specialized chain: sanitize + checksum + key
  // extraction + TTL in one pass over the common IPv4/no-options header
  // (one set of loads feeds the checksum and every check). Anything
  // unusual — options, fragments, v6, non-TCP/UDP, or any check that would
  // fail — falls back to validate(), so outcomes, counters, and drop
  // reasons are identical by construction. Requires cfg_.sanitize,
  // verify_ipv4_checksum, and decrement_ttl (the caller checks).
  bool validate_fast(pkt::PacketPtr& p);
  // Stages 2+3: gates, forwarding decision, TTL decrement, MTU handling,
  // output enqueue. The flow index is already resolved (or resolvable via
  // the per-gate slow path when the cache is disabled). The dispatcher picks
  // the Traced instantiation for the telemetry-sampled 1-in-N packets; both
  // share one body so the paths cannot diverge, and the untraced
  // instantiation compiles to the exact pre-telemetry code.
  void process_classified(pkt::PacketPtr p);
  template <bool Traced>
  void process_classified_impl(pkt::PacketPtr p, telemetry::TraceRecord* tr);
  // Single-entry forwarding memo, valid for one grouped chunk: a flow's
  // back-to-back packets share destination and output interface, so the
  // route lookup and interface resolve hit here instead of the tables.
  // Safe because RoutingTable::lookup is const and nothing mutates routes
  // or interfaces mid-chunk (ICMP re-entry only emits packets).
  struct FwdMemo {
    netbase::IpAddr dst{};
    const route::NextHop* hop{nullptr};
    bool dst_valid{false};
    pkt::IfIndex oif{0};
    netdev::SimNic* nic{nullptr};
    // Output-FIFO port memo for the grouped tail's untraced fast path.
    pkt::IfIndex fifo_oif{0};
    Port* fifo_port{nullptr};
  };
  // The tail shared by the per-packet and grouped paths: routing gate, route
  // lookup, TTL decrement, MTU/fragmentation. `emit(p, sched_binding, tr,
  // t_start)` receives each output-bound packet (fragments individually) —
  // the per-packet path enqueues immediately, the grouped path defers into
  // the chunk's output-op list so same-scheduler runs batch. UseMemo selects
  // the chunk-scoped lookup memos and inline binding accessors of the
  // grouped engine (`frp` is the packet's hoisted flow record, null when
  // unresolved); with UseMemo=false (`memo`/`frp` null) this compiles to
  // exactly the pre-batching per-packet tail. SkipGates (grouped engine
  // only, implies UseMemo) is set when the chunk's flow records prove the
  // routing and sched gates unbound for every packet, eliding both lookups.
  template <bool Traced, bool UseMemo, bool SkipGates, class Emit>
  void finish_packet(pkt::PacketPtr p, telemetry::TraceRecord* tr,
                     std::uint64_t t_start, FwdMemo* memo,
                     aiu::FlowRecord* frp, Emit&& emit);

  // ---- grouped (batch-native) gate dispatch ----
  // Gate lists for the grouped engine: the generic runtime list, and the
  // compile-time fused instantiation for the paper's common 3-gate chain
  // (T3: ipopt -> ipsec -> stats) — the constexpr analogue of PacketMill's
  // chain specialization, selected per burst when cfg_.input_gates matches.
  struct RuntimeGateList {
    std::span<const plugin::PluginType> gates;
    std::span<const plugin::PluginType> list() const noexcept { return gates; }
  };
  struct FusedGateList3 {
    static constexpr std::array<plugin::PluginType, 3> kGates{
        plugin::PluginType::ipopt, plugin::PluginType::ipsec,
        plugin::PluginType::stats};
    constexpr const std::array<plugin::PluginType, 3>& list() const noexcept {
      return kGates;
    }
  };
  // Deferred output op: one packet ready to enqueue, with the sched-gate
  // binding it resolved and its trace state. A chunk's ops flush in order,
  // batching maximal consecutive same-scheduler runs via enqueue_burst.
  struct OutOp {
    pkt::PacketPtr p;
    aiu::GateBinding* b;
    telemetry::TraceRecord* tr;
    std::uint64_t t_start;
  };
  struct OutOpList {
    static constexpr std::size_t kCap = 2 * aiu::Aiu::kMaxBurst;
    OutOp ops[kCap];
    std::size_t n{0};
  };
  // Runs the input gates group-at-a-time over a chunk's validated survivors
  // (`slots` point at the owning PacketPtrs, arrival order), then the shared
  // per-packet tail, then flushes the output ops.
  template <class GateList>
  void process_chunk_grouped(GateList gl, pkt::PacketPtr** slots,
                             std::size_t n);
  void flush_output_ops(OutOpList& l);

  void drop(pkt::PacketPtr p, DropReason r);
  void emit_icmp_error(const pkt::Packet& orig, std::uint8_t type,
                       std::uint8_t code);
  // ICMPv6 (RFC 4443) errors: time exceeded (3/0), packet too big (2/0 with
  // the next-hop MTU in the message body).
  void emit_icmpv6_error(const pkt::Packet& orig, std::uint8_t type,
                         std::uint8_t code, std::uint32_t param);
  // RFC 791 fragmentation toward an output MTU; returns the fragments (the
  // original is consumed). Empty on DF or malformed input.
  std::vector<pkt::PacketPtr> fragment_ipv4(pkt::PacketPtr p, std::size_t mtu);
  template <bool Traced>
  void enqueue_output(pkt::PacketPtr p, aiu::GateBinding* b,
                      telemetry::TraceRecord* tr, std::uint64_t t_start);
  Port& port(pkt::IfIndex iface);

  aiu::Aiu& aiu_;
  route::RoutingTable& routes_;
  netdev::InterfaceTable& ifs_;
  netbase::SimClock& clock_;
  CoreConfig cfg_{};
  // deque: resize never relocates existing Ports (their FIFOs are move-only)
  std::deque<Port> ports_;
  CoreCounters counters_;
  telemetry::Telemetry* tel_{nullptr};
  resilience::Supervisor* res_{nullptr};
  // Nesting depth of process_burst (ICMP errors re-enter via process);
  // deferred breaker rebinds apply only when the outermost burst ends.
  unsigned burst_depth_{0};
  // The grouped chunk currently deferring output ops, or null. emit_icmp
  // flushes it before re-entering process() so an error datagram can never
  // overtake a packet that was forwarded before it.
  OutOpList* cur_ops_{nullptr};
};

}  // namespace rp::core

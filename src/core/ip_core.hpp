// The IPv4/IPv6 core (Section 3.1): the streamlined, stable part of the
// networking subsystem. It interacts with the (simulated) devices, parses
// and validates headers, decrements TTL/hop-limit with an incremental
// checksum update, consults the routing table — and at each extension point
// runs a *gate* that branches to whatever plugin instance the AIU resolves
// for the packet's flow (Section 3.2).
//
// Gates in the current core mirror the paper's: IPv6 option processing,
// IP security, and packet scheduling, plus the routing/L4-switching gate
// (paper §8) and optional stats/congestion/firewall gates. The set and
// order of pre-routing gates is configurable.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "aiu/aiu.hpp"
#include "core/datapath.hpp"
#include "core/scheduler_base.hpp"
#include "netdev/iftable.hpp"
#include "pkt/sanitize.hpp"
#include "route/routing_table.hpp"
#include "telemetry/telemetry.hpp"

namespace rp::resilience {
class Supervisor;
}

namespace rp::core {

enum class DropReason : std::uint8_t {
  none = 0,
  malformed,
  bad_checksum,
  ttl_expired,
  no_route,
  policy,        // gate plugin returned Verdict::drop
  queue_full,    // scheduler refused the packet
  too_big,       // exceeds the output MTU and cannot be fragmented
  plugin_fault,  // resilience containment: fault/bypass at a fail-closed gate
  kCount,
};

constexpr std::string_view to_string(DropReason r) noexcept {
  switch (r) {
    case DropReason::none: return "none";
    case DropReason::malformed: return "malformed";
    case DropReason::bad_checksum: return "bad_checksum";
    case DropReason::ttl_expired: return "ttl_expired";
    case DropReason::no_route: return "no_route";
    case DropReason::policy: return "policy";
    case DropReason::queue_full: return "queue_full";
    case DropReason::too_big: return "too_big";
    case DropReason::plugin_fault: return "plugin_fault";
    case DropReason::kCount: break;
  }
  return "unknown";
}

struct CoreConfig {
  // Ingress sanitization (pkt/sanitize.hpp): canonical validation of every
  // length field and chain before classification. On by default; the off
  // switch exists for measuring its cost, not for production use.
  bool sanitize{true};
  bool verify_ipv4_checksum{true};
  bool decrement_ttl{true};
  bool emit_icmp_errors{false};
  // Gates run before the route lookup, in order. The routing gate runs with
  // the route lookup and the sched gate at output; they need not be listed.
  std::vector<plugin::PluginType> input_gates{
      plugin::PluginType::ipopt, plugin::PluginType::ipsec,
      plugin::PluginType::firewall, plugin::PluginType::congestion,
      plugin::PluginType::stats};
  std::size_t port_fifo_limit{1024};  // default per-port FIFO depth
};

struct CoreCounters {
  std::uint64_t received{0};
  std::uint64_t forwarded{0};  // handed to an output port
  std::uint64_t drops[static_cast<std::size_t>(DropReason::kCount)]{};
  std::uint64_t gate_calls{0};
  std::uint64_t icmp_errors_sent{0};
  std::uint64_t fragments_created{0};
  std::uint64_t bursts{0};         // process_burst chunks entered
  std::uint64_t burst_packets{0};  // packets entering via those chunks
  // Per-check ingress sanitization drops (indexed by pkt::SanitizeCheck;
  // slot 0 / "ok" stays zero) plus packets whose capture padding was
  // trimmed. Sanitize drops are double-counted into drops[malformed] so
  // total_drops() keeps meaning "every packet that went nowhere".
  std::uint64_t sanitize_drops[static_cast<std::size_t>(
      pkt::SanitizeCheck::kCount)]{};
  std::uint64_t sanitize_trimmed{0};

  std::uint64_t dropped(DropReason r) const noexcept {
    return drops[static_cast<std::size_t>(r)];
  }
  std::uint64_t sanitize_dropped(pkt::SanitizeCheck c) const noexcept {
    return sanitize_drops[static_cast<std::size_t>(c)];
  }
  std::uint64_t total_sanitize_drops() const noexcept {
    std::uint64_t n = 0;
    for (auto d : sanitize_drops) n += d;
    return n;
  }
  std::uint64_t total_drops() const noexcept {
    std::uint64_t n = 0;
    for (auto d : drops) n += d;
    return n;
  }
};

class IpCore final : public DataPath {
 public:
  IpCore(aiu::Aiu& aiu, route::RoutingTable& routes,
         netdev::InterfaceTable& ifs, netbase::SimClock& clock);
  IpCore(aiu::Aiu& aiu, route::RoutingTable& routes,
         netdev::InterfaceTable& ifs, netbase::SimClock& clock,
         CoreConfig cfg);

  // Full EISR input path for one received packet; ends with the packet
  // dropped or queued on an output port (scheduler or port FIFO).
  // Implemented as a burst of one so the two entry points cannot diverge.
  void process(pkt::PacketPtr p) override;

  // Batched input path (the tentpole of the burst datapath): validates the
  // whole burst, then resolves every packet's flow binding in one AIU pass
  // (hash-once + bucket/record prefetch + last-flow memo), then runs the
  // unchanged per-packet gate/forwarding machinery — which now always hits
  // the FIX fast path. Gate order, drops, ICMP, fragmentation, and counters
  // are identical to the single-packet path.
  void process_burst(std::span<pkt::PacketPtr> batch) override;

  // Output side, driven by the router kernel when a link goes idle: the
  // port FIFO (control/unscheduled traffic) drains ahead of the scheduler.
  pkt::PacketPtr next_for_tx(pkt::IfIndex iface, netbase::SimTime now) override;
  bool tx_backlog(pkt::IfIndex iface) const override;

  // Earliest future time the port's scheduler may release a packet after
  // next_for_tx returned null while backlogged (non-work-conserving
  // disciplines); -1 if none.
  netbase::SimTime next_tx_wakeup(pkt::IfIndex iface, netbase::SimTime now);

  // Attach a scheduler instance to an output port (pmgr does this after
  // create_instance; per-interface scheduler selection as in §6).
  void set_port_scheduler(pkt::IfIndex iface, OutputScheduler* sched);
  OutputScheduler* port_scheduler(pkt::IfIndex iface);
  // Clears any port still pointing at `inst` (run from the PCU purge hook
  // so freeing an attached scheduler cannot leave a dangling pointer).
  void detach_scheduler(const plugin::PluginInstance* inst) {
    for (auto& pt : ports_)
      if (pt.sched == inst) pt.sched = nullptr;
  }

  const CoreCounters& counters() const noexcept { return counters_; }
  // Resets every CoreCounters field — received/forwarded/drops AND the
  // derived-rate counters (gate_calls, bursts, burst_packets) — so a
  // measurement window started after reset is consistent across the
  // process() and process_burst() entry points.
  void reset_counters() noexcept { counters_ = CoreCounters{}; }
  CoreConfig& config() noexcept { return cfg_; }

  // Attach the telemetry subsystem (histograms + sampled tracing recorded
  // around gate dispatch). Null detaches; with RP_TELEMETRY=0 the
  // instrumentation is compiled out and this is inert.
  void set_telemetry(telemetry::Telemetry* t) noexcept { tel_ = t; }
  telemetry::Telemetry* telemetry_sink() const noexcept { return tel_; }

  // Attach the resilience supervisor: gate dispatch then runs through its
  // guard (exception containment, verdict validation, cycle budgets, circuit
  // breakers, fallback policies). Null detaches — plugins run bare, exactly
  // the pre-resilience code path.
  // Attaches the supervisor and points its breaker-window clock at this
  // core's gate-dispatch counter (defined in ip_core.cpp: Supervisor is
  // only forward-declared here).
  void set_resilience(resilience::Supervisor* s) noexcept;
  resilience::Supervisor* resilience_sink() const noexcept { return res_; }

 private:
  struct Port {
    OutputScheduler* sched{nullptr};
    std::deque<pkt::PacketPtr> fifo;
  };

  // Stage 1 of the input path: parse + header validation (checksum, TTL).
  // On failure the packet is dropped (slot nulled) and false returned.
  bool validate(pkt::PacketPtr& p);
  // Stages 2+3: gates, forwarding decision, TTL decrement, MTU handling,
  // output enqueue. The flow index is already resolved (or resolvable via
  // the per-gate slow path when the cache is disabled). The dispatcher picks
  // the Traced instantiation for the telemetry-sampled 1-in-N packets; both
  // share one body so the paths cannot diverge, and the untraced
  // instantiation compiles to the exact pre-telemetry code.
  void process_classified(pkt::PacketPtr p);
  template <bool Traced>
  void process_classified_impl(pkt::PacketPtr p, telemetry::TraceRecord* tr);

  void drop(pkt::PacketPtr p, DropReason r);
  void emit_icmp_error(const pkt::Packet& orig, std::uint8_t type,
                       std::uint8_t code);
  // ICMPv6 (RFC 4443) errors: time exceeded (3/0), packet too big (2/0 with
  // the next-hop MTU in the message body).
  void emit_icmpv6_error(const pkt::Packet& orig, std::uint8_t type,
                         std::uint8_t code, std::uint32_t param);
  // RFC 791 fragmentation toward an output MTU; returns the fragments (the
  // original is consumed). Empty on DF or malformed input.
  std::vector<pkt::PacketPtr> fragment_ipv4(pkt::PacketPtr p, std::size_t mtu);
  template <bool Traced>
  void enqueue_output(pkt::PacketPtr p, aiu::GateBinding* b,
                      telemetry::TraceRecord* tr, std::uint64_t t_start);
  Port& port(pkt::IfIndex iface);

  aiu::Aiu& aiu_;
  route::RoutingTable& routes_;
  netdev::InterfaceTable& ifs_;
  netbase::SimClock& clock_;
  CoreConfig cfg_{};
  // deque: resize never relocates existing Ports (their FIFOs are move-only)
  std::deque<Port> ports_;
  CoreCounters counters_;
  telemetry::Telemetry* tel_{nullptr};
  resilience::Supervisor* res_{nullptr};
  // Nesting depth of process_burst (ICMP errors re-enter via process);
  // deferred breaker rebinds apply only when the outermost burst ends.
  unsigned burst_depth_{0};
};

}  // namespace rp::core

#include "core/ip_core.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "netbase/byteorder.hpp"
#include "netbase/checksum.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"
#include "resilience/resilience.hpp"

namespace rp::core {

using netbase::IpVersion;
using plugin::PluginType;
using plugin::Verdict;

IpCore::IpCore(aiu::Aiu& aiu, route::RoutingTable& routes,
               netdev::InterfaceTable& ifs, netbase::SimClock& clock)
    : IpCore(aiu, routes, ifs, clock, CoreConfig{}) {}

IpCore::IpCore(aiu::Aiu& aiu, route::RoutingTable& routes,
               netdev::InterfaceTable& ifs, netbase::SimClock& clock,
               CoreConfig cfg)
    : aiu_(aiu), routes_(routes), ifs_(ifs), clock_(clock),
      cfg_(std::move(cfg)) {}

void IpCore::set_resilience(resilience::Supervisor* s) noexcept {
  res_ = s;
  // Breaker error windows are measured against this core's dispatch
  // counter, so the supervisor's hot path never has to count invocations.
  if (s) s->set_invocation_clock(&counters_.gate_calls);
}

IpCore::Port& IpCore::port(pkt::IfIndex iface) {
  if (ports_.size() <= iface) ports_.resize(std::size_t{iface} + 1);
  return ports_[iface];
}

void IpCore::drop(pkt::PacketPtr p, DropReason r) {
  (void)p;  // ownership ends here (mbuf free)
  ++counters_.drops[static_cast<std::size_t>(r)];
}

void IpCore::process(pkt::PacketPtr p) {
  process_burst({&p, 1});
}

void IpCore::process_burst(std::span<pkt::PacketPtr> batch) {
  ++burst_depth_;
  // Grouped dispatch needs stable per-packet bindings, which only the flow
  // cache provides (the ablation path hands out shared scratch bindings).
  const bool grouped = cfg_.batch_gates && aiu_.flow_cache_enabled();
  // The fused chain is the compile-time instantiation of the full
  // sanitize -> classify -> gates pipeline for the paper's 3-gate
  // configuration; one vector compare per call selects it. It hard-codes
  // the default validation config (sanitize + checksum + TTL all on), so
  // any other combination takes the generic path.
  const bool fused =
      grouped && cfg_.sanitize && cfg_.verify_ipv4_checksum &&
      cfg_.decrement_ttl &&
      std::equal(cfg_.input_gates.begin(), cfg_.input_gates.end(),
                 FusedGateList3::kGates.begin(), FusedGateList3::kGates.end());
  pkt::Packet* live[aiu::Aiu::kMaxBurst];
  pkt::PacketPtr* slots[aiu::Aiu::kMaxBurst];
  for (std::size_t base = 0; base < batch.size();
       base += aiu::Aiu::kMaxBurst) {
    auto chunk = batch.subspan(
        base, std::min(aiu::Aiu::kMaxBurst, batch.size() - base));
    ++counters_.bursts;
    counters_.burst_packets += chunk.size();

    // Warm every header line before the validation loop reads it: the
    // buffers were DMA'd (or, in the harness, built) long enough ago that
    // first touch is typically an L3 round-trip, and issuing the whole
    // chunk's loads up front overlaps those misses instead of serializing
    // them through the validators.
    for (auto& p : chunk)
      if (p) __builtin_prefetch(p->data());

    // Stage 1: header validation for the whole chunk (drops fall out here,
    // exactly as in the single-packet path). The fused chain takes the
    // single-pass validator; its fallback is validate() itself, so the two
    // can never diverge.
    std::size_t n_live = 0;
    if (fused) {
      for (auto& p : chunk)
        if (p && validate_fast(p)) {
          slots[n_live] = &p;
          live[n_live++] = p.get();
        }
    } else {
      for (auto& p : chunk)
        if (p && validate(p)) {
          slots[n_live] = &p;
          live[n_live++] = p.get();
        }
    }

    // Stage 2: one AIU pass resolves every survivor's flow index with
    // precomputed hashes and flow-table prefetch.
    aiu_.resolve_flows_burst({live, n_live});

    // Stage 3a (grouped): partition by resolved instance at each gate and
    // dispatch once per group; drop/consume splits compact between gates.
    // A single survivor has nothing to group — it takes the per-packet
    // machinery below, which also keeps process() (a burst of one) on
    // exactly the pre-batching path.
    if (grouped && n_live > 1) {
      if (fused) {
        ++counters_.fused_bursts;
        process_chunk_grouped(FusedGateList3{}, slots, n_live);
      } else {
        process_chunk_grouped(RuntimeGateList{cfg_.input_gates}, slots,
                              n_live);
      }
      continue;
    }

    // Stage 3b: the unchanged per-packet machinery; every gate lookup is
    // now a direct flow-table array access.
    for (auto& p : chunk)
      if (p) process_classified(std::move(p));
  }
  // Apply deferred breaker rebinds only at the outermost burst boundary:
  // ICMP errors re-enter via process(), and purging flow entries while
  // their GateBindings are live would dangle pointers.
  if (--burst_depth_ == 0 && res_) res_->end_of_burst();
}

bool IpCore::validate(pkt::PacketPtr& p) {
  ++counters_.received;

  // ---- ingress sanitization (stable core code, not a plugin) ----
  // Every untrusted length field and chain is checked before the packet can
  // reach classification or any plugin; the per-check counter says which
  // invariant adversarial traffic is probing (docs/wire_hardening.md).
  if (cfg_.sanitize) {
    bool trimmed = false;
    const auto check = pkt::sanitize_packet(*p, trimmed);
    if (check != pkt::SanitizeCheck::ok) {
      ++counters_.sanitize_drops[static_cast<std::size_t>(check)];
      drop(std::move(p), DropReason::malformed);
      return false;
    }
    if (trimmed) ++counters_.sanitize_trimmed;
  }

  // ---- header validation ----
  if (!pkt::extract_flow_key(*p)) {
    drop(std::move(p), DropReason::malformed);
    return false;
  }

  std::uint8_t* h = p->data();
  if (p->ip_version == IpVersion::v4) {
    const std::size_t hlen = std::size_t{static_cast<std::size_t>(h[0] & 0x0f)} * 4;
    if (cfg_.verify_ipv4_checksum &&
        !pkt::Ipv4Header::verify_checksum({h, hlen})) {
      drop(std::move(p), DropReason::bad_checksum);
      return false;
    }
    if (cfg_.decrement_ttl && h[8] <= 1) {
      if (cfg_.emit_icmp_errors) emit_icmp_error(*p, 11, 0);  // time exceeded
      drop(std::move(p), DropReason::ttl_expired);
      return false;
    }
  } else {
    if (cfg_.decrement_ttl && h[7] <= 1) {
      if (cfg_.emit_icmp_errors) emit_icmpv6_error(*p, 3, 0, 0);
      drop(std::move(p), DropReason::ttl_expired);
      return false;
    }
  }
  return true;
}

bool IpCore::validate_fast(pkt::PacketPtr& p) {
  using netbase::load_be16;
  const auto b = p->bytes();
  // Fast path: IPv4, no options, unfragmented, TCP/UDP. One set of header
  // loads feeds the checksum and every sanitize/validate check below;
  // anything else (including every would-fail packet) re-runs the generic
  // validate() from scratch, which owns all drop accounting.
  if (b.size() < 28 || b[0] != 0x45) return validate(p);
  const std::uint8_t* h = b.data();
  // RFC 1071 sum over the 20-byte header in three wide loads. The one's-
  // complement sum is byte-order independent up to a final swap, so the
  // verdict is identical to summing big-endian 16-bit words.
  std::uint64_t q0, q1;
  std::uint32_t q2;
  std::memcpy(&q0, h, 8);
  std::memcpy(&q1, h + 8, 8);
  std::memcpy(&q2, h + 16, 4);
  const unsigned __int128 acc =
      static_cast<unsigned __int128>(q0) + q1 + q2;
  std::uint64_t sum =
      static_cast<std::uint64_t>(acc) + static_cast<std::uint64_t>(acc >> 64);
  sum += sum < static_cast<std::uint64_t>(acc);  // end-around carry
  sum = (sum & 0xffffffff) + (sum >> 32);
  sum = (sum & 0xffff) + (sum >> 16);
  sum = (sum & 0xffff) + (sum >> 16);
  sum = (sum & 0xffff) + (sum >> 16);
  if constexpr (std::endian::native == std::endian::little)
    sum = ((sum & 0xff) << 8) | (sum >> 8);
  const std::size_t total_len = load_be16(&h[2]);
  if (total_len > b.size() || (load_be16(&h[6]) & 0x3fff) != 0)
    return validate(p);
  const std::uint8_t proto = h[9];
  if (proto == static_cast<std::uint8_t>(pkt::IpProto::udp)) {
    if (total_len < 20 + pkt::UdpHeader::kSize) return validate(p);
    const std::size_t ulen = load_be16(&h[24]);
    if (ulen < pkt::UdpHeader::kSize || 20 + ulen > total_len)
      return validate(p);
  } else if (proto == static_cast<std::uint8_t>(pkt::IpProto::tcp)) {
    if (total_len < 20 + pkt::TcpHeader::kMinSize) return validate(p);
    const std::size_t doff = static_cast<std::size_t>(h[32] >> 4) * 4;
    if (doff < pkt::TcpHeader::kMinSize || 20 + doff > total_len)
      return validate(p);
  } else {
    return validate(p);
  }
  if (sum != 0xffff) return validate(p);  // bad checksum: generic drops it
  if (h[8] <= 1) return validate(p);      // TTL expired: generic drops it
  // Success: exactly the side effects of sanitize + extract + validate.
  ++counters_.received;
  if (b.size() > total_len) {
    p->trim(b.size() - total_len);
    ++counters_.sanitize_trimmed;
  }
  if (!p->key_valid) {
    p->invalidate_flow_hash();
    p->ip_version = IpVersion::v4;
    p->key.src = netbase::IpAddr(netbase::Ipv4Addr(netbase::load_be32(&h[12])));
    p->key.dst = netbase::IpAddr(netbase::Ipv4Addr(netbase::load_be32(&h[16])));
    p->key.proto = proto;
    p->key.sport = load_be16(&h[20]);
    p->key.dport = load_be16(&h[22]);
    p->key.in_iface = p->in_iface;
    p->l4_offset = 20;
    p->key_valid = true;
  }
  return true;
}

void IpCore::process_classified(pkt::PacketPtr p) {
#if RP_TELEMETRY
  // The sampled 1-in-N take the Traced instantiation; everyone else pays
  // exactly one counter decrement (sample_tick) over the pre-telemetry code.
  if (tel_ && tel_->sample_tick()) [[unlikely]]
    return process_classified_impl<true>(std::move(p), tel_->trace_begin(*p));
#endif
  process_classified_impl<false>(std::move(p), nullptr);
}

template <bool Traced>
void IpCore::process_classified_impl(pkt::PacketPtr p,
                                     [[maybe_unused]] telemetry::TraceRecord* tr) {
  [[maybe_unused]] std::uint64_t t_start = 0;
  if constexpr (Traced) t_start = telemetry::cycles();

  auto finish_drop = [&](pkt::PacketPtr q, DropReason r) {
    if constexpr (Traced)
      tel_->trace_end(tr, telemetry::Disposition::dropped,
                      static_cast<std::uint8_t>(r), pkt::kAnyIface,
                      telemetry::cycles() - t_start);
    drop(std::move(q), r);
  };
  // Dispatches one gate, timing the plugin call on the traced instantiation.
  // With a supervisor attached the call runs through its guard (containment
  // + breaker); without one this is exactly the pre-resilience direct call.
  auto run_gate = [&](PluginType gate, aiu::GateBinding* b) {
    ++counters_.gate_calls;
    if constexpr (Traced) {
      const std::uint64_t c0 = telemetry::cycles();
      resilience::Decision d =
          res_ ? res_->dispatch(gate, *b, *p)
               : resilience::Decision{
                     b->instance->handle_packet(*p, &b->soft), false};
      tel_->record_gate(tr, gate, static_cast<std::uint8_t>(d.verdict),
                        telemetry::cycles() - c0);
      return d;
    } else {
      if (res_) [[likely]]
        return res_->dispatch(gate, *b, *p);
      return resilience::Decision{b->instance->handle_packet(*p, &b->soft),
                                  false};
    }
  };

  // ---- pre-routing gates (Section 3.2) ----
  for (PluginType gate : cfg_.input_gates) {
    aiu::GateBinding* b = aiu_.gate_lookup(*p, gate);
    if (!b || !b->instance) continue;  // no plugin bound for this flow
    resilience::Decision d = run_gate(gate, b);
    if (d.verdict == Verdict::drop)
      return finish_drop(std::move(p), d.fault_drop ? DropReason::plugin_fault
                                                    : DropReason::policy);
    if (d.verdict == Verdict::consumed) {  // plugin took the packet
      if constexpr (Traced)
        tel_->trace_end(tr, telemetry::Disposition::consumed, 0,
                        pkt::kAnyIface, telemetry::cycles() - t_start);
      return;
    }
  }

  // ---- tail: forwarding decision, TTL, MTU, output ----
  finish_packet<Traced, false, false>(
      std::move(p), tr, t_start, nullptr, nullptr,
      [this](pkt::PacketPtr q, aiu::GateBinding* b, telemetry::TraceRecord* tr2,
             std::uint64_t ts) {
        enqueue_output<Traced>(std::move(q), b, tr2, ts);
      });
}

// The tail shared by process_classified_impl and the grouped engine; the
// differences are what `emit` does with an output-bound packet (enqueue
// immediately vs defer into the chunk's op list) and whether the chunk-scoped
// memo / inline binding accessors are used (UseMemo — the grouped engine; the
// per-packet path compiles to exactly the pre-batching tail).
template <bool Traced, bool UseMemo, bool SkipGates, class Emit>
void IpCore::finish_packet(pkt::PacketPtr p,
                           [[maybe_unused]] telemetry::TraceRecord* tr,
                           [[maybe_unused]] std::uint64_t t_start,
                           [[maybe_unused]] FwdMemo* memo,
                           [[maybe_unused]] aiu::FlowRecord* frp, Emit&& emit) {
  static_assert(UseMemo || !SkipGates, "SkipGates requires the grouped tail");
  auto finish_drop = [&](pkt::PacketPtr q, DropReason r) {
    if constexpr (Traced)
      tel_->trace_end(tr, telemetry::Disposition::dropped,
                      static_cast<std::uint8_t>(r), pkt::kAnyIface,
                      telemetry::cycles() - t_start);
    drop(std::move(q), r);
  };
  auto run_gate = [&](PluginType gate, aiu::GateBinding* b) {
    ++counters_.gate_calls;
    if constexpr (Traced) {
      const std::uint64_t c0 = telemetry::cycles();
      resilience::Decision d =
          res_ ? res_->dispatch(gate, *b, *p)
               : resilience::Decision{
                     b->instance->handle_packet(*p, &b->soft), false};
      tel_->record_gate(tr, gate, static_cast<std::uint8_t>(d.verdict),
                        telemetry::cycles() - c0);
      return d;
    } else {
      if (res_) [[likely]]
        return res_->dispatch(gate, *b, *p);
      return resilience::Decision{b->instance->handle_packet(*p, &b->soft),
                                  false};
    }
  };

  // ---- forwarding decision ----
  // The routing gate (L4 switching) may pre-empt the destination lookup.
  // It stays per-packet even under grouped dispatch: its verdict gates a
  // per-packet control decision, and it is unbound in every built-in
  // configuration.
  if constexpr (!SkipGates) {
    if (p->out_iface == pkt::kAnyIface) {
      aiu::GateBinding* b;
      if constexpr (UseMemo) {
        constexpr std::size_t kGiRouting =
            aiu::gate_index(PluginType::routing);
        b = frp ? &frp->gates[kGiRouting]
                : aiu_.gate_lookup(*p, PluginType::routing);
      } else {
        b = aiu_.gate_lookup(*p, PluginType::routing);
      }
      if (b && b->instance) {
        resilience::Decision d = run_gate(PluginType::routing, b);
        if (d.verdict == Verdict::drop)
          return finish_drop(std::move(p), d.fault_drop
                                               ? DropReason::plugin_fault
                                               : DropReason::policy);
      }
    }
  }
  if (p->out_iface == pkt::kAnyIface) {
    // Chunk-scoped memo: a flow's train shares one destination, so the trie
    // walk runs once per run of same-dst packets (lookup is const — the
    // cached pointer is exactly what a fresh lookup would return).
    const route::NextHop* hop;
    if constexpr (UseMemo) {
      if (memo->dst_valid && memo->dst == p->key.dst) {
        hop = memo->hop;
      } else {
        hop = routes_.lookup(p->key.dst);
        memo->dst = p->key.dst;
        memo->hop = hop;
        memo->dst_valid = true;
      }
    } else {
      hop = routes_.lookup(p->key.dst);
    }
    if (!hop) {
      if (cfg_.emit_icmp_errors && p->ip_version == IpVersion::v4)
        emit_icmp_error(*p, 3, 0);  // destination unreachable
      return finish_drop(std::move(p), DropReason::no_route);
    }
    p->out_iface = hop->out_iface;
  }
  [[maybe_unused]] netdev::SimNic* nic = nullptr;
  if constexpr (UseMemo) {
    if (memo->nic && memo->oif == p->out_iface) {
      nic = memo->nic;
    } else {
      nic = ifs_.by_index(p->out_iface);
      if (nic) {
        memo->oif = p->out_iface;
        memo->nic = nic;
      }
    }
    if (!nic) return finish_drop(std::move(p), DropReason::no_route);
  } else {
    if (!ifs_.by_index(p->out_iface))
      return finish_drop(std::move(p), DropReason::no_route);
  }

  // ---- TTL / hop limit, with RFC 1624 incremental checksum update ----
  // Fetch the header pointer only now: gate plugins (AH/ESP) may have
  // prepended headers and moved the packet's data start.
  std::uint8_t* h = p->data();
  if (cfg_.decrement_ttl) {
    if (p->ip_version == IpVersion::v4) {
      const std::uint16_t old_word = netbase::load_be16(&h[8]);
      --h[8];
      const std::uint16_t new_word = netbase::load_be16(&h[8]);
      const std::uint16_t old_ck = netbase::load_be16(&h[10]);
      netbase::store_be16(&h[10],
                          netbase::checksum_update16(old_ck, old_word, new_word));
    } else {
      --h[7];
    }
  }

  // ---- MTU handling (RFC 791 fragmentation) ----
  aiu::GateBinding* b;
  std::size_t mtu;
  if constexpr (SkipGates) {
    b = nullptr;  // sched gate provably unbound for the chunk
    mtu = nic->mtu();
  } else if constexpr (UseMemo) {
    constexpr std::size_t kGiSched = aiu::gate_index(PluginType::sched);
    b = frp ? &frp->gates[kGiSched] : aiu_.gate_lookup(*p, PluginType::sched);
    mtu = nic->mtu();
  } else {
    b = aiu_.gate_lookup(*p, PluginType::sched);
    mtu = ifs_.by_index(p->out_iface)->mtu();
  }
  if (p->size() > mtu) {
    const bool df = p->ip_version == IpVersion::v4 &&
                    (p->data()[6] & 0x40) != 0;  // Don't Fragment
    if (p->ip_version != IpVersion::v4 || df) {
      // Routers never fragment IPv6; DF forbids it for IPv4. Signal path
      // MTU discovery.
      if (cfg_.emit_icmp_errors) {
        if (p->ip_version == IpVersion::v4)
          emit_icmp_error(*p, 3, 4);  // fragmentation needed and DF set
        else
          emit_icmpv6_error(*p, 2, 0, static_cast<std::uint32_t>(mtu));
      }
      return finish_drop(std::move(p), DropReason::too_big);
    }
    auto frags = fragment_ipv4(std::move(p), mtu);
    if (frags.empty())
      return finish_drop(nullptr, DropReason::malformed);
    counters_.fragments_created += frags.size();
    // The trace follows the first fragment through the output stage.
    bool first = true;
    for (auto& f : frags) {
      emit(std::move(f), b, first ? tr : nullptr, t_start);
      first = false;
    }
    return;
  }
  emit(std::move(p), b, tr, t_start);
}

// ---- grouped (batch-native) gate dispatch --------------------------------
//
// The engine never reorders packets: the live list stays in arrival order
// and each group is *gathered* into per-group scratch arrays, so a flow's
// packets — and the chunk's egress — leave in exactly the per-packet path's
// order. Counter equivalence is exact: gate_calls advances once per packet
// dispatched (the breaker windows are anchored to it); the group counters
// ride alongside.
template <class GateList>
void IpCore::process_chunk_grouped(GateList gl, pkt::PacketPtr** slots,
                                   std::size_t n) {
  constexpr std::size_t kMax = aiu::Aiu::kMaxBurst;

  // Per-packet trace state; the sampling cadence (one tick per packet, in
  // arrival order) is identical to the per-packet path's. With no telemetry
  // sink attached the arrays stay uninitialized and every read site is
  // guarded on tel_.
#if RP_TELEMETRY
  telemetry::TraceRecord* tr[kMax];
  std::uint64_t t0[kMax];
  if (tel_) {
    for (std::size_t i = 0; i < n; ++i) {
      tr[i] = tel_->sample_tick() ? tel_->trace_begin(*slots[i]->get())
                                  : nullptr;
      t0[i] = tr[i] ? telemetry::cycles() : 0;
    }
  }
#endif

  // Live packets in arrival order: slot indices plus parallel raw-pointer
  // arrays (packet, flow record), compacted together, so the gate loops
  // never chase PacketPtr double indirection and each gate's binding is one
  // indexed load off the hoisted record.
  std::size_t live[kMax];
  pkt::Packet* lp[kMax];
  aiu::FlowRecord* fr[kMax];
  std::size_t n_live = n;
  aiu::FlowTable& flows = aiu_.flow_table();
  // Union of the chunk's bound-gate masks: one test skips a whole gate (or
  // the tail's routing/sched lookups) when no live flow binds it. An
  // unresolved packet contributes all-ones — it must take the full lookups.
  std::uint32_t bound_union = 0;
  for (std::size_t i = 0; i < n; ++i) {
    live[i] = i;
    lp[i] = slots[i]->get();
    const pkt::FlowIndex fix = lp[i]->fix;
    fr[i] = fix != pkt::kNoFlow ? &flows.rec(fix) : nullptr;
    bound_union |= fr[i] ? fr[i]->bound_mask : ~std::uint32_t{0};
  }

  Verdict verdict[kMax];
  bool fdrop[kMax];

  for (PluginType gate : gl.list()) {
    if (n_live == 0) break;
    const std::size_t gi = aiu::gate_index(gate);
    if (!(bound_union & (std::uint32_t{1} << gi)))
      continue;  // gate unbound for every live flow: provably a no-op

    // Bindings for every live packet: resolve_flows_burst already set every
    // FIX, so each lookup is one indexed load off the hoisted flow record,
    // and the binding pointers are stable for the whole chunk. Detect on the
    // fly whether one instance spans the chunk — the common case (one
    // filter's flows arriving in trains) then dispatches with no gather at
    // all.
    aiu::GateBinding* bind[kMax];
    void** gsoft[kMax];
    plugin::PluginInstance* first = nullptr;
    bool mixed = false;
    for (std::size_t k = 0; k < n_live; ++k) {
      aiu::GateBinding* b =
          fr[k] ? &fr[k]->gates[gi] : aiu_.gate_lookup(*lp[k], gate);
      bind[k] = b;
      // Speculative per-packet state for the no-gather dispatch below; the
      // gather path refills its own scratch, so a mixed chunk just wastes
      // these few stores.
      gsoft[k] = b ? &b->soft : nullptr;
      verdict[k] = Verdict::cont;
      fdrop[k] = false;
      plugin::PluginInstance* inst = b ? b->instance : nullptr;
      if (k == 0)
        first = inst;
      else
        mixed |= inst != first;
    }
    if (!mixed && !first) continue;  // gate unbound for the whole chunk

    // Whether any packet left `cont` at this gate; when none did (by far
    // the common case for filter-style gates) the verdict-apply/compaction
    // pass is skipped outright — the live list is already correct.
    bool any_noncont = false;

    // Dispatches one gathered group through the batch ABI: one breaker
    // consult, one containment frame, one virtual call. `pos` maps group
    // member -> live index (null = identity, the no-gather fast path).
    auto run_group = [&](plugin::PluginInstance& inst, pkt::Packet* const* gp,
                         void** const* gsoft, Verdict* gv, std::size_t m,
                         const std::size_t* pos) {
      counters_.gate_calls += m;
      ++counters_.gate_groups;
      counters_.gate_group_pkts += m;
      ++counters_.group_size_hist[CoreCounters::group_hist_bucket(m)];
      plugin::PacketRun run(gp, gsoft, gv, m);
#if RP_TELEMETRY
      bool timed = false;
      if (tel_)
        for (std::size_t x = 0; x < m && !timed; ++x)
          timed = tr[live[pos ? pos[x] : x]] != nullptr;
      const std::uint64_t c0 = timed ? telemetry::cycles() : 0;
#endif
      resilience::Decision d{};
      if (res_) {
        d = res_->dispatch_run(gate, inst, [&] { inst.handle_burst(run); });
      } else {
        inst.handle_burst(run);
      }
#if RP_TELEMETRY
      // Traced members record the amortized per-packet cost of the group.
      const std::uint64_t dc = timed ? (telemetry::cycles() - c0) / m : 0;
#endif
      if (d.fault_drop) {
        // Containment fallback (fail_closed) governs the whole run: a
        // partially-processed run cannot tell which packets the plugin
        // already judged. fail_open comes back as cont and keeps whatever
        // verdicts the run had written before the fault.
        any_noncont = true;
        for (std::size_t x = 0; x < m; ++x) {
          const std::size_t k = pos ? pos[x] : x;
          verdict[k] = Verdict::drop;
          fdrop[k] = true;
        }
      } else {
        for (std::size_t x = 0; x < m; ++x) {
          const std::size_t k = pos ? pos[x] : x;
          Verdict v = gv[x];
          if (static_cast<std::uint8_t>(v) >
              static_cast<std::uint8_t>(Verdict::drop)) [[unlikely]] {
            // Out-of-enum verdict: same fault the per-packet dispatch()
            // raises; the bare (unsupervised) path treats it as cont, like
            // the per-packet verdict switch.
            if (res_) {
              resilience::Decision bd = res_->bad_verdict(gate, inst);
              v = bd.verdict;
              fdrop[k] = bd.fault_drop;
            } else {
              v = Verdict::cont;
            }
          }
          verdict[k] = v;
          any_noncont |= v != Verdict::cont;
        }
      }
#if RP_TELEMETRY
      if (timed)
        for (std::size_t x = 0; x < m; ++x) {
          const std::size_t k = pos ? pos[x] : x;
          if (telemetry::TraceRecord* t = tr[live[k]])
            tel_->record_gate(t, gate,
                              static_cast<std::uint8_t>(verdict[k]), dc);
        }
#endif
    };

    if (res_ && !res_->quiet()) [[unlikely]] {
      // Injection armed, a budget set, or a breaker non-closed: per-packet
      // dispatch in arrival order keeps those semantics exact — windows,
      // probes, per-packet fallbacks, and each gate's injection rule stream
      // advance exactly as on the per-packet path.
      for (std::size_t k = 0; k < n_live; ++k) {
        if (!bind[k] || !bind[k]->instance) {
          verdict[k] = Verdict::cont;
          fdrop[k] = false;
          continue;
        }
        ++counters_.gate_calls;
#if RP_TELEMETRY
        telemetry::TraceRecord* t = tel_ ? tr[live[k]] : nullptr;
        const std::uint64_t c0 = t ? telemetry::cycles() : 0;
#endif
        resilience::Decision d = res_->dispatch(gate, *bind[k], *lp[k]);
#if RP_TELEMETRY
        if (t)
          tel_->record_gate(t, gate, static_cast<std::uint8_t>(d.verdict),
                            telemetry::cycles() - c0);
#endif
        verdict[k] = d.verdict;
        fdrop[k] = d.fault_drop;
        any_noncont |= d.verdict != Verdict::cont;
      }
    } else if (!mixed) {
      // One instance spans the chunk (per-flow soft slots still differ):
      // dispatch the live list as a single group straight out of lp[],
      // writing verdicts in place.
      run_group(*first, lp, gsoft, verdict, n_live, nullptr);
    } else {
      // Mixed instances: gather each group into scratch, in arrival order.
      // Grouping can never split or reorder a flow — all packets of one
      // flow share one binding.
      pkt::Packet* gp[kMax];
      void** gs[kMax];
      Verdict gv[kMax];
      std::size_t gpos[kMax];  // group member -> position in live[]
      bool taken[kMax];
      for (std::size_t k = 0; k < n_live; ++k) taken[k] = false;
      for (std::size_t k = 0; k < n_live; ++k) {
        if (taken[k]) continue;
        plugin::PluginInstance* inst = bind[k] ? bind[k]->instance : nullptr;
        if (!inst) continue;  // unbound for this flow: the gate is a no-op
        std::size_t m = 0;
        for (std::size_t j = k; j < n_live; ++j) {
          if (taken[j] || !bind[j] || bind[j]->instance != inst) continue;
          taken[j] = true;
          gp[m] = lp[j];
          gs[m] = &bind[j]->soft;
          gv[m] = Verdict::cont;
          gpos[m] = j;
          ++m;
        }
        run_group(*inst, gp, gs, gv, m, gpos);
      }
    }

    // Apply dispositions and compact the live list (arrival order kept):
    // survivors re-partition at the next gate.
    if (!any_noncont) continue;  // every verdict cont: nothing to compact
    std::size_t w = 0;
    for (std::size_t k = 0; k < n_live; ++k) {
      const std::size_t s = live[k];
      switch (verdict[k]) {
        case Verdict::cont:
          live[w] = s;
          lp[w] = lp[k];
          fr[w] = fr[k];
          ++w;
          break;
        case Verdict::drop:
#if RP_TELEMETRY
          if (tel_ && tr[s])
            tel_->trace_end(tr[s], telemetry::Disposition::dropped,
                            static_cast<std::uint8_t>(
                                fdrop[k] ? DropReason::plugin_fault
                                         : DropReason::policy),
                            pkt::kAnyIface, telemetry::cycles() - t0[s]);
#endif
          drop(std::move(*slots[s]), fdrop[k] ? DropReason::plugin_fault
                                              : DropReason::policy);
          break;
        case Verdict::consumed:
          // Same as the per-packet path's early return: the core's
          // ownership ends here.
#if RP_TELEMETRY
          if (tel_ && tr[s])
            tel_->trace_end(tr[s], telemetry::Disposition::consumed, 0,
                            pkt::kAnyIface, telemetry::cycles() - t0[s]);
#endif
          slots[s]->reset();
          break;
      }
    }
    n_live = w;
  }

  // ---- shared per-packet tail ----
  // Scheduler-bound outputs defer into the op list so same-scheduler runs
  // batch through enqueue_burst; plain FIFO outputs (no scheduler on the
  // port) have nothing to batch and enqueue in place — each queue still
  // fills in arrival order, so drain order is untouched. emit_icmp_error
  // flushes cur_ops_ before re-entering process(), so an error datagram
  // cannot overtake a packet forwarded before it.
  FwdMemo memo;
  OutOpList ops;
  OutOpList* prev = cur_ops_;
  cur_ops_ = &ops;
  auto defer = [&](pkt::PacketPtr q, aiu::GateBinding* b,
                   telemetry::TraceRecord* t, std::uint64_t ts) {
    OutputScheduler* sched;
    if (b && b->instance) {
      sched = static_cast<OutputScheduler*>(b->instance);
    } else {
      // Memoized port fetch: a chunk's packets overwhelmingly share one
      // output interface.
      Port* pt;
      if (memo.fifo_port && memo.fifo_oif == q->out_iface) {
        pt = memo.fifo_port;
      } else {
        pt = &port(q->out_iface);
        memo.fifo_oif = q->out_iface;
        memo.fifo_port = pt;
      }
      sched = pt->sched;
      if (!sched) {
        if (t) [[unlikely]] {  // rare traced packet: full path, exact trace
          enqueue_output<true>(std::move(q), b, t, ts);
          return;
        }
        // Untraced, unbound, unscheduled: exactly enqueue_output<false>'s
        // FIFO path, with the Port fetch memoized away.
        ++counters_.forwarded;
        if (pt->fifo.size() >= cfg_.port_fifo_limit) [[unlikely]] {
          --counters_.forwarded;
          drop(std::move(q), DropReason::queue_full);
          return;
        }
        pt->fifo.push_back(std::move(q));
        return;
      }
    }
    if (ops.n == OutOpList::kCap) flush_output_ops(ops);
    ops.ops[ops.n++] = OutOp{std::move(q), b, t, ts};
  };
  const bool skip_rs =
      (bound_union &
       ((std::uint32_t{1} << aiu::gate_index(PluginType::routing)) |
        (std::uint32_t{1} << aiu::gate_index(PluginType::sched)))) == 0;
  for (std::size_t k = 0; k < n_live; ++k) {
    const std::size_t s = live[k];
#if RP_TELEMETRY
    if (tel_ && tr[s]) {
      finish_packet<true, true, false>(std::move(*slots[s]), tr[s], t0[s],
                                       &memo, fr[k], defer);
      continue;
    }
#endif
    if (skip_rs)
      finish_packet<false, true, true>(std::move(*slots[s]), nullptr, 0, &memo,
                                       nullptr, defer);
    else
      finish_packet<false, true, false>(std::move(*slots[s]), nullptr, 0,
                                        &memo, fr[k], defer);
  }
  flush_output_ops(ops);
  cur_ops_ = prev;
}

// Flushes deferred output ops in order, batching each maximal consecutive
// same-scheduler run through OutputScheduler::enqueue_burst. FIFO-bound ops
// and runs under a non-quiet supervisor (whose per-packet admission/guard
// semantics must hold exactly) take the per-packet enqueue_output path, in
// place, so relative order is always preserved.
void IpCore::flush_output_ops(OutOpList& l) {
  std::size_t i = 0;
  while (i < l.n) {
    OutOp& op = l.ops[i];
    if (!op.p) {
      ++i;
      continue;
    }
    const bool bound = op.b && op.b->instance;
    OutputScheduler* sched =
        bound ? static_cast<OutputScheduler*>(op.b->instance)
              : port(op.p->out_iface).sched;

    std::size_t j = i + 1;
    if (sched && (!res_ || res_->quiet())) {
      while (j < l.n && l.ops[j].p) {
        const OutOp& nx = l.ops[j];
        const bool nb = nx.b && nx.b->instance;
        OutputScheduler* ns =
            nb ? static_cast<OutputScheduler*>(nx.b->instance)
               : port(nx.p->out_iface).sched;
        if (ns != sched) break;
        ++j;
      }
    }
    const std::size_t m = j - i;
    if (m == 1) {
      if (op.tr)
        enqueue_output<true>(std::move(op.p), op.b, op.tr, op.t_start);
      else
        enqueue_output<false>(std::move(op.p), op.b, nullptr, 0);
      ++i;
      continue;
    }

    // ---- batched enqueue for the run [i, j) ----
    // Quiet (or no supervisor) is guaranteed here, so sched_admit would
    // admit unconditionally — the breaker consult folds into one quiet()
    // read above; a fault below flips quiet off and the next run falls back
    // to the per-packet path.
    pkt::PacketPtr run_pkts[OutOpList::kCap];
    void** run_softs[OutOpList::kCap];
    bool accepted[OutOpList::kCap];
    pkt::IfIndex oifs[OutOpList::kCap];
    for (std::size_t x = 0; x < m; ++x) {
      OutOp& o = l.ops[i + x];
      oifs[x] = o.p->out_iface;
      run_softs[x] = (o.b && o.b->instance) ? &o.b->soft : nullptr;
      accepted[x] = false;
      run_pkts[x] = std::move(o.p);
    }
    counters_.gate_calls += m;
    counters_.forwarded += m;
    ++counters_.gate_groups;
    counters_.gate_group_pkts += m;
    ++counters_.group_size_hist[CoreCounters::group_hist_bucket(m)];

#if RP_TELEMETRY
    bool timed = false;
    if (tel_)
      for (std::size_t x = 0; x < m && !timed; ++x)
        timed = l.ops[i + x].tr != nullptr;
    const std::uint64_t c0 = timed ? telemetry::cycles() : 0;
#endif
    bool ok = true;
    if (res_) {
      ok = res_->guard_enqueue(*sched, [&] {
        sched->enqueue_burst(run_pkts, run_softs, accepted, m, clock_.now());
      });
    } else {
      sched->enqueue_burst(run_pkts, run_softs, accepted, m, clock_.now());
    }
#if RP_TELEMETRY
    const std::uint64_t dc = timed ? (telemetry::cycles() - c0) / m : 0;
#endif

    for (std::size_t x = 0; x < m; ++x) {
      [[maybe_unused]] OutOp& o = l.ops[i + x];
      const bool succeeded = ok && accepted[x];
#if RP_TELEMETRY
      if (o.tr)
        tel_->record_gate(o.tr, PluginType::sched,
                          static_cast<std::uint8_t>(
                              succeeded ? Verdict::consumed : Verdict::drop),
                          dc);
      auto end_trace = [&](telemetry::Disposition disp, DropReason r) {
        if (o.tr)
          tel_->trace_end(o.tr, disp, static_cast<std::uint8_t>(r), oifs[x],
                          telemetry::cycles() - o.t_start);
      };
#else
      auto end_trace = [](telemetry::Disposition, DropReason) {};
#endif
      if (ok) {
        if (accepted[x]) {
          end_trace(telemetry::Disposition::queued, DropReason::none);
        } else {
          --counters_.forwarded;
          end_trace(telemetry::Disposition::dropped, DropReason::queue_full);
          drop(std::move(run_pkts[x]), DropReason::queue_full);
        }
        continue;
      }
      // The burst call threw (real plugin bug on the quiet path — injected
      // throws imply a non-quiet supervisor, which never reaches here).
      if (run_pkts[x]) {
        // Untouched by the plugin: apply the sched fallback, per packet.
        if (res_->fallback(PluginType::sched) !=
            resilience::Fallback::fail_closed) {
          Port& out = port(oifs[x]);
          if (out.fifo.size() >= cfg_.port_fifo_limit) {
            --counters_.forwarded;
            end_trace(telemetry::Disposition::dropped,
                      DropReason::queue_full);
            drop(std::move(run_pkts[x]), DropReason::queue_full);
          } else {
            out.fifo.push_back(std::move(run_pkts[x]));
            end_trace(telemetry::Disposition::queued, DropReason::none);
          }
        } else {
          --counters_.forwarded;
          end_trace(telemetry::Disposition::dropped,
                    DropReason::plugin_fault);
          drop(std::move(run_pkts[x]), DropReason::plugin_fault);
        }
      } else if (accepted[x]) {
        // Queued before the throw; the outcome stands.
        end_trace(telemetry::Disposition::queued, DropReason::none);
      } else {
        // Consumed by the throw — or rejected just before it, which is
        // indistinguishable once the pointer is gone. Account the
        // conservative reading: a containment loss.
        --counters_.forwarded;
        end_trace(telemetry::Disposition::dropped, DropReason::plugin_fault);
        drop(nullptr, DropReason::plugin_fault);
      }
    }
    i = j;
  }
  l.n = 0;
}

template <bool Traced>
void IpCore::enqueue_output(pkt::PacketPtr p, aiu::GateBinding* b,
                            [[maybe_unused]] telemetry::TraceRecord* tr,
                            [[maybe_unused]] std::uint64_t t_start) {
  const pkt::IfIndex oif = p->out_iface;
  Port& out = port(oif);
  const bool bound = b && b->instance;
  OutputScheduler* sched =
      bound ? static_cast<OutputScheduler*>(b->instance) : out.sched;
  ++counters_.forwarded;

  auto end_dropped = [&](pkt::PacketPtr q, DropReason r) {
    --counters_.forwarded;
    if constexpr (Traced)
      if (tr)
        tel_->trace_end(tr, telemetry::Disposition::dropped,
                        static_cast<std::uint8_t>(r), oif,
                        telemetry::cycles() - t_start);
    drop(std::move(q), r);
  };
  auto end_queued = [&] {
    if constexpr (Traced)
      if (tr)
        tel_->trace_end(tr, telemetry::Disposition::queued, 0, oif,
                        telemetry::cycles() - t_start);
  };
  auto fifo_enqueue = [&](pkt::PacketPtr q) {
    if (out.fifo.size() >= cfg_.port_fifo_limit)
      return end_dropped(std::move(q), DropReason::queue_full);
    out.fifo.push_back(std::move(q));
    end_queued();
  };

  if (sched && res_) [[likely]] {
    // Breaker consult before ownership moves into the plugin: an Open
    // scheduler degrades to the port FIFO (best_effort/fail_open) or drops
    // (fail_closed) without being called at all.
    switch (res_->sched_admit(*sched)) {
      case resilience::SchedAdmit::admit:
        break;
      case resilience::SchedAdmit::bypass:
        sched = nullptr;
        break;
      case resilience::SchedAdmit::drop:
        return end_dropped(std::move(p), DropReason::plugin_fault);
    }
  }

  if (sched) {
    ++counters_.gate_calls;
    void** soft = bound ? &b->soft : nullptr;
    bool accepted = false;
    bool ok = true;
    [[maybe_unused]] std::uint64_t c0 = 0;
    if constexpr (Traced) c0 = telemetry::cycles();
    if (res_) [[likely]] {
      ok = res_->guard_enqueue(*sched, [&] {
        accepted = sched->enqueue(std::move(p), soft, clock_.now());
      });
    } else {
      accepted = sched->enqueue(std::move(p), soft, clock_.now());
    }
    if constexpr (Traced)
      if (tr)
        tel_->record_gate(tr, PluginType::sched,
                          static_cast<std::uint8_t>(ok && accepted
                                                        ? Verdict::consumed
                                                        : Verdict::drop),
                          telemetry::cycles() - c0);
    if (!ok) [[unlikely]] {
      // The enqueue threw. An injected throw fires before the call and
      // leaves the packet intact — apply the sched fallback; a real throw
      // consumed the packet mid-move, so there is nothing to salvage and
      // the loss is accounted as a plugin_fault drop.
      if (p && res_->fallback(PluginType::sched) !=
                   resilience::Fallback::fail_closed)
        return fifo_enqueue(std::move(p));
      return end_dropped(std::move(p), DropReason::plugin_fault);
    }
    if (!accepted) return end_dropped(std::move(p), DropReason::queue_full);
    return end_queued();
  }
  fifo_enqueue(std::move(p));
}

std::vector<pkt::PacketPtr> IpCore::fragment_ipv4(pkt::PacketPtr p,
                                                  std::size_t mtu) {
  const std::uint8_t* h = p->data();
  const std::size_t hlen = std::size_t{static_cast<std::size_t>(h[0] & 0x0f)} * 4;
  if (hlen < pkt::Ipv4Header::kMinSize || hlen >= p->size() || mtu <= hlen)
    return {};
  const std::size_t payload_len = p->size() - hlen;
  // Fragment payload sizes must be multiples of 8 (except the last).
  const std::size_t max_chunk = (mtu - hlen) & ~std::size_t{7};
  if (max_chunk == 0) return {};

  const std::uint16_t orig_ff = netbase::load_be16(&h[6]);
  const bool orig_mf = (orig_ff & 0x2000) != 0;
  const std::uint16_t orig_off = orig_ff & 0x1fff;

  std::vector<pkt::PacketPtr> out;
  for (std::size_t off = 0; off < payload_len; off += max_chunk) {
    const std::size_t chunk =
        off + max_chunk < payload_len ? max_chunk : payload_len - off;
    auto frag = pkt::make_packet(hlen + chunk);
    std::memcpy(frag->data(), h, hlen);
    std::memcpy(frag->data() + hlen, h + hlen + off, chunk);

    const bool last = off + chunk >= payload_len;
    std::uint16_t ff = static_cast<std::uint16_t>(
        (orig_off + off / 8) | ((last && !orig_mf) ? 0 : 0x2000));
    netbase::store_be16(frag->data() + 6, ff);
    netbase::store_be16(frag->data() + 2,
                        static_cast<std::uint16_t>(hlen + chunk));
    pkt::Ipv4Header::finalize_checksum(frag->data(), hlen);

    // Carry the forwarding metadata; only the first fragment truly holds
    // the transport header, but the flow was classified at ingress.
    frag->arrival = p->arrival;
    frag->in_iface = p->in_iface;
    frag->out_iface = p->out_iface;
    frag->fix = p->fix;
    frag->key = p->key;
    frag->key_valid = true;
    frag->ip_version = p->ip_version;
    frag->l4_offset = static_cast<std::uint16_t>(hlen);
    out.push_back(std::move(frag));
  }
  return out;
}

pkt::PacketPtr IpCore::next_for_tx(pkt::IfIndex iface, netbase::SimTime now) {
  Port& pt = port(iface);
  if (!pt.fifo.empty()) {
    auto p = std::move(pt.fifo.front());
    pt.fifo.pop_front();
    return p;
  }
  if (pt.sched) return pt.sched->dequeue(now);
  return nullptr;
}

netbase::SimTime IpCore::next_tx_wakeup(pkt::IfIndex iface,
                                        netbase::SimTime now) {
  Port& pt = port(iface);
  if (pt.sched && !pt.sched->empty()) return pt.sched->next_wakeup(now);
  return -1;
}

bool IpCore::tx_backlog(pkt::IfIndex iface) const {
  if (ports_.size() <= iface) return false;
  const Port& pt = ports_[iface];
  return !pt.fifo.empty() || (pt.sched && !pt.sched->empty());
}

void IpCore::set_port_scheduler(pkt::IfIndex iface, OutputScheduler* sched) {
  port(iface).sched = sched;
}

OutputScheduler* IpCore::port_scheduler(pkt::IfIndex iface) {
  return port(iface).sched;
}

void IpCore::emit_icmp_error(const pkt::Packet& orig, std::uint8_t type,
                             std::uint8_t code) {
  // RFC 792: IP header + ICMP header + original IP header + 8 bytes.
  if (orig.ip_version != IpVersion::v4) return;
  if (orig.key.proto == static_cast<std::uint8_t>(pkt::IpProto::icmp)) {
    // Never generate ICMP about ICMP (errors, at least; keep it simple).
    return;
  }
  const std::size_t quote =
      orig.size() < orig.l4_offset + 8u ? orig.size() : orig.l4_offset + 8u;
  auto icmp = pkt::make_packet(pkt::Ipv4Header::kMinSize +
                               pkt::IcmpHeader::kSize + quote);

  pkt::Ipv4Header ip;
  ip.total_len = static_cast<std::uint16_t>(icmp->size());
  ip.ttl = 64;
  ip.proto = static_cast<std::uint8_t>(pkt::IpProto::icmp);
  ip.src = orig.key.dst.v4();  // nominally this router's address
  ip.dst = orig.key.src.v4();
  ip.write(icmp->data());
  pkt::Ipv4Header::finalize_checksum(icmp->data(), pkt::Ipv4Header::kMinSize);

  std::uint8_t* ic = icmp->data() + pkt::Ipv4Header::kMinSize;
  pkt::IcmpHeader ih;
  ih.type = type;
  ih.code = code;
  ih.write(ic);
  std::memcpy(ic + pkt::IcmpHeader::kSize, orig.data(), quote);
  netbase::store_be16(ic + 2, 0);
  netbase::store_be16(
      ic + 2, netbase::checksum(ic, pkt::IcmpHeader::kSize + quote));

  ++counters_.icmp_errors_sent;
  // Flush any output the grouped chunk deferred before this point, so the
  // error cannot overtake packets forwarded ahead of it; then re-enter the
  // core so the error is routed like any other packet (recursion guarded by
  // the ICMP-about-ICMP rule above).
  if (cur_ops_) flush_output_ops(*cur_ops_);
  process(std::move(icmp));
}

void IpCore::emit_icmpv6_error(const pkt::Packet& orig, std::uint8_t type,
                               std::uint8_t code, std::uint32_t param) {
  if (orig.ip_version != IpVersion::v6) return;
  if (orig.key.proto == static_cast<std::uint8_t>(pkt::IpProto::icmpv6))
    return;  // never ICMP about ICMP errors
  // RFC 4443: as much of the offending packet as fits in the 1280-byte
  // minimum MTU.
  const std::size_t room = 1280 - pkt::Ipv6Header::kSize - 8;
  const std::size_t quote = orig.size() < room ? orig.size() : room;
  auto icmp = pkt::make_packet(pkt::Ipv6Header::kSize + 8 + quote);

  pkt::Ipv6Header ip;
  ip.payload_len = static_cast<std::uint16_t>(8 + quote);
  ip.next_header = static_cast<std::uint8_t>(pkt::IpProto::icmpv6);
  ip.hop_limit = 64;
  ip.src = orig.key.dst.v6();  // nominally this router's address
  ip.dst = orig.key.src.v6();
  ip.write(icmp->data());

  std::uint8_t* ic = icmp->data() + pkt::Ipv6Header::kSize;
  ic[0] = type;
  ic[1] = code;
  netbase::store_be16(&ic[2], 0);
  netbase::store_be32(&ic[4], param);  // MTU for PTB, zero otherwise
  std::memcpy(ic + 8, orig.data(), quote);

  // ICMPv6 checksum over the IPv6 pseudo header + message.
  std::uint8_t ph[40];
  ip.src.to_bytes(&ph[0]);
  ip.dst.to_bytes(&ph[16]);
  netbase::store_be32(&ph[32], static_cast<std::uint32_t>(8 + quote));
  ph[36] = ph[37] = ph[38] = 0;
  ph[39] = static_cast<std::uint8_t>(pkt::IpProto::icmpv6);
  std::uint32_t sum = netbase::checksum_partial(ph, sizeof ph);
  sum = netbase::checksum_partial(ic, 8 + quote, sum);
  netbase::store_be16(&ic[2], static_cast<std::uint16_t>(~sum));

  ++counters_.icmp_errors_sent;
  if (cur_ops_) flush_output_ops(*cur_ops_);  // keep egress order (see above)
  process(std::move(icmp));
}

}  // namespace rp::core

#include "core/ip_core.hpp"

#include <algorithm>
#include <cstring>

#include "netbase/byteorder.hpp"
#include "netbase/checksum.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"
#include "resilience/resilience.hpp"

namespace rp::core {

using netbase::IpVersion;
using plugin::PluginType;
using plugin::Verdict;

IpCore::IpCore(aiu::Aiu& aiu, route::RoutingTable& routes,
               netdev::InterfaceTable& ifs, netbase::SimClock& clock)
    : IpCore(aiu, routes, ifs, clock, CoreConfig{}) {}

IpCore::IpCore(aiu::Aiu& aiu, route::RoutingTable& routes,
               netdev::InterfaceTable& ifs, netbase::SimClock& clock,
               CoreConfig cfg)
    : aiu_(aiu), routes_(routes), ifs_(ifs), clock_(clock),
      cfg_(std::move(cfg)) {}

void IpCore::set_resilience(resilience::Supervisor* s) noexcept {
  res_ = s;
  // Breaker error windows are measured against this core's dispatch
  // counter, so the supervisor's hot path never has to count invocations.
  if (s) s->set_invocation_clock(&counters_.gate_calls);
}

IpCore::Port& IpCore::port(pkt::IfIndex iface) {
  if (ports_.size() <= iface) ports_.resize(std::size_t{iface} + 1);
  return ports_[iface];
}

void IpCore::drop(pkt::PacketPtr p, DropReason r) {
  (void)p;  // ownership ends here (mbuf free)
  ++counters_.drops[static_cast<std::size_t>(r)];
}

void IpCore::process(pkt::PacketPtr p) {
  process_burst({&p, 1});
}

void IpCore::process_burst(std::span<pkt::PacketPtr> batch) {
  ++burst_depth_;
  pkt::Packet* live[aiu::Aiu::kMaxBurst];
  for (std::size_t base = 0; base < batch.size();
       base += aiu::Aiu::kMaxBurst) {
    auto chunk = batch.subspan(
        base, std::min(aiu::Aiu::kMaxBurst, batch.size() - base));
    ++counters_.bursts;
    counters_.burst_packets += chunk.size();

    // Stage 1: header validation for the whole chunk (drops fall out here,
    // exactly as in the single-packet path).
    std::size_t n_live = 0;
    for (auto& p : chunk)
      if (p && validate(p)) live[n_live++] = p.get();

    // Stage 2: one AIU pass resolves every survivor's flow index with
    // precomputed hashes and flow-table prefetch.
    aiu_.resolve_flows_burst({live, n_live});

    // Stage 3: the unchanged per-packet machinery; every gate lookup is now
    // a direct flow-table array access.
    for (auto& p : chunk)
      if (p) process_classified(std::move(p));
  }
  // Apply deferred breaker rebinds only at the outermost burst boundary:
  // ICMP errors re-enter via process(), and purging flow entries while
  // their GateBindings are live would dangle pointers.
  if (--burst_depth_ == 0 && res_) res_->end_of_burst();
}

bool IpCore::validate(pkt::PacketPtr& p) {
  ++counters_.received;

  // ---- ingress sanitization (stable core code, not a plugin) ----
  // Every untrusted length field and chain is checked before the packet can
  // reach classification or any plugin; the per-check counter says which
  // invariant adversarial traffic is probing (docs/wire_hardening.md).
  if (cfg_.sanitize) {
    bool trimmed = false;
    const auto check = pkt::sanitize_packet(*p, trimmed);
    if (check != pkt::SanitizeCheck::ok) {
      ++counters_.sanitize_drops[static_cast<std::size_t>(check)];
      drop(std::move(p), DropReason::malformed);
      return false;
    }
    if (trimmed) ++counters_.sanitize_trimmed;
  }

  // ---- header validation ----
  if (!pkt::extract_flow_key(*p)) {
    drop(std::move(p), DropReason::malformed);
    return false;
  }

  std::uint8_t* h = p->data();
  if (p->ip_version == IpVersion::v4) {
    const std::size_t hlen = std::size_t{static_cast<std::size_t>(h[0] & 0x0f)} * 4;
    if (cfg_.verify_ipv4_checksum &&
        !pkt::Ipv4Header::verify_checksum({h, hlen})) {
      drop(std::move(p), DropReason::bad_checksum);
      return false;
    }
    if (cfg_.decrement_ttl && h[8] <= 1) {
      if (cfg_.emit_icmp_errors) emit_icmp_error(*p, 11, 0);  // time exceeded
      drop(std::move(p), DropReason::ttl_expired);
      return false;
    }
  } else {
    if (cfg_.decrement_ttl && h[7] <= 1) {
      if (cfg_.emit_icmp_errors) emit_icmpv6_error(*p, 3, 0, 0);
      drop(std::move(p), DropReason::ttl_expired);
      return false;
    }
  }
  return true;
}

void IpCore::process_classified(pkt::PacketPtr p) {
#if RP_TELEMETRY
  // The sampled 1-in-N take the Traced instantiation; everyone else pays
  // exactly one counter decrement (sample_tick) over the pre-telemetry code.
  if (tel_ && tel_->sample_tick()) [[unlikely]]
    return process_classified_impl<true>(std::move(p), tel_->trace_begin(*p));
#endif
  process_classified_impl<false>(std::move(p), nullptr);
}

template <bool Traced>
void IpCore::process_classified_impl(pkt::PacketPtr p,
                                     [[maybe_unused]] telemetry::TraceRecord* tr) {
  [[maybe_unused]] std::uint64_t t_start = 0;
  if constexpr (Traced) t_start = telemetry::cycles();

  auto finish_drop = [&](pkt::PacketPtr q, DropReason r) {
    if constexpr (Traced)
      tel_->trace_end(tr, telemetry::Disposition::dropped,
                      static_cast<std::uint8_t>(r), pkt::kAnyIface,
                      telemetry::cycles() - t_start);
    drop(std::move(q), r);
  };
  // Dispatches one gate, timing the plugin call on the traced instantiation.
  // With a supervisor attached the call runs through its guard (containment
  // + breaker); without one this is exactly the pre-resilience direct call.
  auto run_gate = [&](PluginType gate, aiu::GateBinding* b) {
    ++counters_.gate_calls;
    if constexpr (Traced) {
      const std::uint64_t c0 = telemetry::cycles();
      resilience::Decision d =
          res_ ? res_->dispatch(gate, *b, *p)
               : resilience::Decision{
                     b->instance->handle_packet(*p, &b->soft), false};
      tel_->record_gate(tr, gate, static_cast<std::uint8_t>(d.verdict),
                        telemetry::cycles() - c0);
      return d;
    } else {
      if (res_) [[likely]]
        return res_->dispatch(gate, *b, *p);
      return resilience::Decision{b->instance->handle_packet(*p, &b->soft),
                                  false};
    }
  };

  // ---- pre-routing gates (Section 3.2) ----
  for (PluginType gate : cfg_.input_gates) {
    aiu::GateBinding* b = aiu_.gate_lookup(*p, gate);
    if (!b || !b->instance) continue;  // no plugin bound for this flow
    resilience::Decision d = run_gate(gate, b);
    if (d.verdict == Verdict::drop)
      return finish_drop(std::move(p), d.fault_drop ? DropReason::plugin_fault
                                                    : DropReason::policy);
    if (d.verdict == Verdict::consumed) {  // plugin took the packet
      if constexpr (Traced)
        tel_->trace_end(tr, telemetry::Disposition::consumed, 0,
                        pkt::kAnyIface, telemetry::cycles() - t_start);
      return;
    }
  }

  // ---- forwarding decision ----
  // The routing gate (L4 switching) may pre-empt the destination lookup.
  if (p->out_iface == pkt::kAnyIface) {
    aiu::GateBinding* b = aiu_.gate_lookup(*p, PluginType::routing);
    if (b && b->instance) {
      resilience::Decision d = run_gate(PluginType::routing, b);
      if (d.verdict == Verdict::drop)
        return finish_drop(std::move(p), d.fault_drop
                                             ? DropReason::plugin_fault
                                             : DropReason::policy);
    }
  }
  if (p->out_iface == pkt::kAnyIface) {
    const route::NextHop* hop = routes_.lookup(p->key.dst);
    if (!hop) {
      if (cfg_.emit_icmp_errors && p->ip_version == IpVersion::v4)
        emit_icmp_error(*p, 3, 0);  // destination unreachable
      return finish_drop(std::move(p), DropReason::no_route);
    }
    p->out_iface = hop->out_iface;
  }
  if (!ifs_.by_index(p->out_iface))
    return finish_drop(std::move(p), DropReason::no_route);

  // ---- TTL / hop limit, with RFC 1624 incremental checksum update ----
  // Fetch the header pointer only now: gate plugins (AH/ESP) may have
  // prepended headers and moved the packet's data start.
  std::uint8_t* h = p->data();
  if (cfg_.decrement_ttl) {
    if (p->ip_version == IpVersion::v4) {
      const std::uint16_t old_word = netbase::load_be16(&h[8]);
      --h[8];
      const std::uint16_t new_word = netbase::load_be16(&h[8]);
      const std::uint16_t old_ck = netbase::load_be16(&h[10]);
      netbase::store_be16(&h[10],
                          netbase::checksum_update16(old_ck, old_word, new_word));
    } else {
      --h[7];
    }
  }

  // ---- MTU handling (RFC 791 fragmentation) ----
  aiu::GateBinding* b = aiu_.gate_lookup(*p, PluginType::sched);
  const std::size_t mtu = ifs_.by_index(p->out_iface)->mtu();
  if (p->size() > mtu) {
    const bool df = p->ip_version == IpVersion::v4 &&
                    (p->data()[6] & 0x40) != 0;  // Don't Fragment
    if (p->ip_version != IpVersion::v4 || df) {
      // Routers never fragment IPv6; DF forbids it for IPv4. Signal path
      // MTU discovery.
      if (cfg_.emit_icmp_errors) {
        if (p->ip_version == IpVersion::v4)
          emit_icmp_error(*p, 3, 4);  // fragmentation needed and DF set
        else
          emit_icmpv6_error(*p, 2, 0, static_cast<std::uint32_t>(mtu));
      }
      return finish_drop(std::move(p), DropReason::too_big);
    }
    auto frags = fragment_ipv4(std::move(p), mtu);
    if (frags.empty())
      return finish_drop(nullptr, DropReason::malformed);
    counters_.fragments_created += frags.size();
    // The trace follows the first fragment through the output stage.
    bool first = true;
    for (auto& f : frags) {
      enqueue_output<Traced>(std::move(f), b, first ? tr : nullptr, t_start);
      first = false;
    }
    return;
  }
  enqueue_output<Traced>(std::move(p), b, tr, t_start);
}

template <bool Traced>
void IpCore::enqueue_output(pkt::PacketPtr p, aiu::GateBinding* b,
                            [[maybe_unused]] telemetry::TraceRecord* tr,
                            [[maybe_unused]] std::uint64_t t_start) {
  const pkt::IfIndex oif = p->out_iface;
  Port& out = port(oif);
  const bool bound = b && b->instance;
  OutputScheduler* sched =
      bound ? static_cast<OutputScheduler*>(b->instance) : out.sched;
  ++counters_.forwarded;

  auto end_dropped = [&](pkt::PacketPtr q, DropReason r) {
    --counters_.forwarded;
    if constexpr (Traced)
      if (tr)
        tel_->trace_end(tr, telemetry::Disposition::dropped,
                        static_cast<std::uint8_t>(r), oif,
                        telemetry::cycles() - t_start);
    drop(std::move(q), r);
  };
  auto end_queued = [&] {
    if constexpr (Traced)
      if (tr)
        tel_->trace_end(tr, telemetry::Disposition::queued, 0, oif,
                        telemetry::cycles() - t_start);
  };
  auto fifo_enqueue = [&](pkt::PacketPtr q) {
    if (out.fifo.size() >= cfg_.port_fifo_limit)
      return end_dropped(std::move(q), DropReason::queue_full);
    out.fifo.push_back(std::move(q));
    end_queued();
  };

  if (sched && res_) [[likely]] {
    // Breaker consult before ownership moves into the plugin: an Open
    // scheduler degrades to the port FIFO (best_effort/fail_open) or drops
    // (fail_closed) without being called at all.
    switch (res_->sched_admit(*sched)) {
      case resilience::SchedAdmit::admit:
        break;
      case resilience::SchedAdmit::bypass:
        sched = nullptr;
        break;
      case resilience::SchedAdmit::drop:
        return end_dropped(std::move(p), DropReason::plugin_fault);
    }
  }

  if (sched) {
    ++counters_.gate_calls;
    void** soft = bound ? &b->soft : nullptr;
    bool accepted = false;
    bool ok = true;
    [[maybe_unused]] std::uint64_t c0 = 0;
    if constexpr (Traced) c0 = telemetry::cycles();
    if (res_) [[likely]] {
      ok = res_->guard_enqueue(*sched, [&] {
        accepted = sched->enqueue(std::move(p), soft, clock_.now());
      });
    } else {
      accepted = sched->enqueue(std::move(p), soft, clock_.now());
    }
    if constexpr (Traced)
      if (tr)
        tel_->record_gate(tr, PluginType::sched,
                          static_cast<std::uint8_t>(ok && accepted
                                                        ? Verdict::consumed
                                                        : Verdict::drop),
                          telemetry::cycles() - c0);
    if (!ok) [[unlikely]] {
      // The enqueue threw. An injected throw fires before the call and
      // leaves the packet intact — apply the sched fallback; a real throw
      // consumed the packet mid-move, so there is nothing to salvage and
      // the loss is accounted as a plugin_fault drop.
      if (p && res_->fallback(PluginType::sched) !=
                   resilience::Fallback::fail_closed)
        return fifo_enqueue(std::move(p));
      return end_dropped(std::move(p), DropReason::plugin_fault);
    }
    if (!accepted) return end_dropped(std::move(p), DropReason::queue_full);
    return end_queued();
  }
  fifo_enqueue(std::move(p));
}

std::vector<pkt::PacketPtr> IpCore::fragment_ipv4(pkt::PacketPtr p,
                                                  std::size_t mtu) {
  const std::uint8_t* h = p->data();
  const std::size_t hlen = std::size_t{static_cast<std::size_t>(h[0] & 0x0f)} * 4;
  if (hlen < pkt::Ipv4Header::kMinSize || hlen >= p->size() || mtu <= hlen)
    return {};
  const std::size_t payload_len = p->size() - hlen;
  // Fragment payload sizes must be multiples of 8 (except the last).
  const std::size_t max_chunk = (mtu - hlen) & ~std::size_t{7};
  if (max_chunk == 0) return {};

  const std::uint16_t orig_ff = netbase::load_be16(&h[6]);
  const bool orig_mf = (orig_ff & 0x2000) != 0;
  const std::uint16_t orig_off = orig_ff & 0x1fff;

  std::vector<pkt::PacketPtr> out;
  for (std::size_t off = 0; off < payload_len; off += max_chunk) {
    const std::size_t chunk =
        off + max_chunk < payload_len ? max_chunk : payload_len - off;
    auto frag = pkt::make_packet(hlen + chunk);
    std::memcpy(frag->data(), h, hlen);
    std::memcpy(frag->data() + hlen, h + hlen + off, chunk);

    const bool last = off + chunk >= payload_len;
    std::uint16_t ff = static_cast<std::uint16_t>(
        (orig_off + off / 8) | ((last && !orig_mf) ? 0 : 0x2000));
    netbase::store_be16(frag->data() + 6, ff);
    netbase::store_be16(frag->data() + 2,
                        static_cast<std::uint16_t>(hlen + chunk));
    pkt::Ipv4Header::finalize_checksum(frag->data(), hlen);

    // Carry the forwarding metadata; only the first fragment truly holds
    // the transport header, but the flow was classified at ingress.
    frag->arrival = p->arrival;
    frag->in_iface = p->in_iface;
    frag->out_iface = p->out_iface;
    frag->fix = p->fix;
    frag->key = p->key;
    frag->key_valid = true;
    frag->ip_version = p->ip_version;
    frag->l4_offset = static_cast<std::uint16_t>(hlen);
    out.push_back(std::move(frag));
  }
  return out;
}

pkt::PacketPtr IpCore::next_for_tx(pkt::IfIndex iface, netbase::SimTime now) {
  Port& pt = port(iface);
  if (!pt.fifo.empty()) {
    auto p = std::move(pt.fifo.front());
    pt.fifo.pop_front();
    return p;
  }
  if (pt.sched) return pt.sched->dequeue(now);
  return nullptr;
}

netbase::SimTime IpCore::next_tx_wakeup(pkt::IfIndex iface,
                                        netbase::SimTime now) {
  Port& pt = port(iface);
  if (pt.sched && !pt.sched->empty()) return pt.sched->next_wakeup(now);
  return -1;
}

bool IpCore::tx_backlog(pkt::IfIndex iface) const {
  if (ports_.size() <= iface) return false;
  const Port& pt = ports_[iface];
  return !pt.fifo.empty() || (pt.sched && !pt.sched->empty());
}

void IpCore::set_port_scheduler(pkt::IfIndex iface, OutputScheduler* sched) {
  port(iface).sched = sched;
}

OutputScheduler* IpCore::port_scheduler(pkt::IfIndex iface) {
  return port(iface).sched;
}

void IpCore::emit_icmp_error(const pkt::Packet& orig, std::uint8_t type,
                             std::uint8_t code) {
  // RFC 792: IP header + ICMP header + original IP header + 8 bytes.
  if (orig.ip_version != IpVersion::v4) return;
  if (orig.key.proto == static_cast<std::uint8_t>(pkt::IpProto::icmp)) {
    // Never generate ICMP about ICMP (errors, at least; keep it simple).
    return;
  }
  const std::size_t quote =
      orig.size() < orig.l4_offset + 8u ? orig.size() : orig.l4_offset + 8u;
  auto icmp = pkt::make_packet(pkt::Ipv4Header::kMinSize +
                               pkt::IcmpHeader::kSize + quote);

  pkt::Ipv4Header ip;
  ip.total_len = static_cast<std::uint16_t>(icmp->size());
  ip.ttl = 64;
  ip.proto = static_cast<std::uint8_t>(pkt::IpProto::icmp);
  ip.src = orig.key.dst.v4();  // nominally this router's address
  ip.dst = orig.key.src.v4();
  ip.write(icmp->data());
  pkt::Ipv4Header::finalize_checksum(icmp->data(), pkt::Ipv4Header::kMinSize);

  std::uint8_t* ic = icmp->data() + pkt::Ipv4Header::kMinSize;
  pkt::IcmpHeader ih;
  ih.type = type;
  ih.code = code;
  ih.write(ic);
  std::memcpy(ic + pkt::IcmpHeader::kSize, orig.data(), quote);
  netbase::store_be16(ic + 2, 0);
  netbase::store_be16(
      ic + 2, netbase::checksum(ic, pkt::IcmpHeader::kSize + quote));

  ++counters_.icmp_errors_sent;
  // Re-enter the core so the error is routed like any other packet; guard
  // against recursion via the ICMP-about-ICMP rule above.
  process(std::move(icmp));
}

void IpCore::emit_icmpv6_error(const pkt::Packet& orig, std::uint8_t type,
                               std::uint8_t code, std::uint32_t param) {
  if (orig.ip_version != IpVersion::v6) return;
  if (orig.key.proto == static_cast<std::uint8_t>(pkt::IpProto::icmpv6))
    return;  // never ICMP about ICMP errors
  // RFC 4443: as much of the offending packet as fits in the 1280-byte
  // minimum MTU.
  const std::size_t room = 1280 - pkt::Ipv6Header::kSize - 8;
  const std::size_t quote = orig.size() < room ? orig.size() : room;
  auto icmp = pkt::make_packet(pkt::Ipv6Header::kSize + 8 + quote);

  pkt::Ipv6Header ip;
  ip.payload_len = static_cast<std::uint16_t>(8 + quote);
  ip.next_header = static_cast<std::uint8_t>(pkt::IpProto::icmpv6);
  ip.hop_limit = 64;
  ip.src = orig.key.dst.v6();  // nominally this router's address
  ip.dst = orig.key.src.v6();
  ip.write(icmp->data());

  std::uint8_t* ic = icmp->data() + pkt::Ipv6Header::kSize;
  ic[0] = type;
  ic[1] = code;
  netbase::store_be16(&ic[2], 0);
  netbase::store_be32(&ic[4], param);  // MTU for PTB, zero otherwise
  std::memcpy(ic + 8, orig.data(), quote);

  // ICMPv6 checksum over the IPv6 pseudo header + message.
  std::uint8_t ph[40];
  ip.src.to_bytes(&ph[0]);
  ip.dst.to_bytes(&ph[16]);
  netbase::store_be32(&ph[32], static_cast<std::uint32_t>(8 + quote));
  ph[36] = ph[37] = ph[38] = 0;
  ph[39] = static_cast<std::uint8_t>(pkt::IpProto::icmpv6);
  std::uint32_t sum = netbase::checksum_partial(ph, sizeof ph);
  sum = netbase::checksum_partial(ic, 8 + quote, sum);
  netbase::store_be16(&ic[2], static_cast<std::uint16_t>(~sum));

  ++counters_.icmp_errors_sent;
  process(std::move(icmp));
}

}  // namespace rp::core

// Minimal interface the router kernel's event loop drives. Implemented by
// the EISR IpCore and by the BestEffortCore baseline so the same harness can
// measure both (Table 3 compares exactly these two kernels).
#pragma once

#include "netbase/clock.hpp"
#include "pkt/packet.hpp"

namespace rp::core {

class DataPath {
 public:
  virtual ~DataPath() = default;

  // Input path for one received packet (already timestamped by the NIC).
  virtual void process(pkt::PacketPtr p) = 0;

  // Next packet to transmit on `iface`, or nullptr.
  virtual pkt::PacketPtr next_for_tx(pkt::IfIndex iface,
                                     netbase::SimTime now) = 0;
  virtual bool tx_backlog(pkt::IfIndex iface) const = 0;
};

}  // namespace rp::core

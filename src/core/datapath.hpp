// Minimal interface the router kernel's event loop drives. Implemented by
// the EISR IpCore and by the BestEffortCore baseline so the same harness can
// measure both (Table 3 compares exactly these two kernels).
#pragma once

#include <span>

#include "netbase/clock.hpp"
#include "pkt/packet.hpp"

namespace rp::core {

class DataPath {
 public:
  virtual ~DataPath() = default;

  // Input path for one received packet (already timestamped by the NIC).
  virtual void process(pkt::PacketPtr p) = 0;

  // Input path for a burst of received packets (a NIC ring drain). Every
  // slot is consumed. The default processes packets one at a time; cores
  // with a batched fast path (IpCore) override it.
  virtual void process_burst(std::span<pkt::PacketPtr> batch) {
    for (auto& p : batch)
      if (p) process(std::move(p));
  }

  // Next packet to transmit on `iface`, or nullptr.
  virtual pkt::PacketPtr next_for_tx(pkt::IfIndex iface,
                                     netbase::SimTime now) = 0;
  virtual bool tx_backlog(pkt::IfIndex iface) const = 0;
};

}  // namespace rp::core

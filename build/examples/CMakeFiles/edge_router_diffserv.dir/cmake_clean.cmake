file(REMOVE_RECURSE
  "CMakeFiles/edge_router_diffserv.dir/edge_router_diffserv.cpp.o"
  "CMakeFiles/edge_router_diffserv.dir/edge_router_diffserv.cpp.o.d"
  "edge_router_diffserv"
  "edge_router_diffserv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_router_diffserv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for edge_router_diffserv.
# This may be replaced when dependencies are built.

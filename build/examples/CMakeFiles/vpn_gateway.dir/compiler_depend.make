# Empty compiler generated dependencies file for vpn_gateway.
# This may be replaced when dependencies are built.

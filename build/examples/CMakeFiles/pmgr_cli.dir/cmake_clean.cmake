file(REMOVE_RECURSE
  "CMakeFiles/pmgr_cli.dir/pmgr_cli.cpp.o"
  "CMakeFiles/pmgr_cli.dir/pmgr_cli.cpp.o.d"
  "pmgr_cli"
  "pmgr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmgr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

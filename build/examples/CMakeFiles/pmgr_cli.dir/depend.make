# Empty dependencies file for pmgr_cli.
# This may be replaced when dependencies are built.

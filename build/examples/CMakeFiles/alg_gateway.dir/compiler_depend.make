# Empty compiler generated dependencies file for alg_gateway.
# This may be replaced when dependencies are built.

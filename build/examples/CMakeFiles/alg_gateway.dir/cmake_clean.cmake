file(REMOVE_RECURSE
  "CMakeFiles/alg_gateway.dir/alg_gateway.cpp.o"
  "CMakeFiles/alg_gateway.dir/alg_gateway.cpp.o.d"
  "alg_gateway"
  "alg_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alg_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

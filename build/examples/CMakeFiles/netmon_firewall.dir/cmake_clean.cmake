file(REMOVE_RECURSE
  "CMakeFiles/netmon_firewall.dir/netmon_firewall.cpp.o"
  "CMakeFiles/netmon_firewall.dir/netmon_firewall.cpp.o.d"
  "netmon_firewall"
  "netmon_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

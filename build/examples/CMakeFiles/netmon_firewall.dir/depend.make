# Empty dependencies file for netmon_firewall.
# This may be replaced when dependencies are built.

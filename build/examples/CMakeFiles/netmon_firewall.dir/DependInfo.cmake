
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/netmon_firewall.cpp" "examples/CMakeFiles/netmon_firewall.dir/netmon_firewall.cpp.o" "gcc" "examples/CMakeFiles/netmon_firewall.dir/netmon_firewall.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_ipsec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_ipopt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_netdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_aiu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_bmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_plugin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fe_hfsc.dir/bench_fe_hfsc.cpp.o"
  "CMakeFiles/bench_fe_hfsc.dir/bench_fe_hfsc.cpp.o.d"
  "bench_fe_hfsc"
  "bench_fe_hfsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fe_hfsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fe_hfsc.
# This may be replaced when dependencies are built.

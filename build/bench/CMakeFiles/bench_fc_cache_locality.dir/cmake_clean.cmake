file(REMOVE_RECURSE
  "CMakeFiles/bench_fc_cache_locality.dir/bench_fc_cache_locality.cpp.o"
  "CMakeFiles/bench_fc_cache_locality.dir/bench_fc_cache_locality.cpp.o.d"
  "bench_fc_cache_locality"
  "bench_fc_cache_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fc_cache_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fc_cache_locality.
# This may be replaced when dependencies are built.

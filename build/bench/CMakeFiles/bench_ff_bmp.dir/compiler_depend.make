# Empty compiler generated dependencies file for bench_ff_bmp.
# This may be replaced when dependencies are built.

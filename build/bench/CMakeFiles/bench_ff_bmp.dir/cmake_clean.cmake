file(REMOVE_RECURSE
  "CMakeFiles/bench_ff_bmp.dir/bench_ff_bmp.cpp.o"
  "CMakeFiles/bench_ff_bmp.dir/bench_ff_bmp.cpp.o.d"
  "bench_ff_bmp"
  "bench_ff_bmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ff_bmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_overall.dir/bench_t3_overall.cpp.o"
  "CMakeFiles/bench_t3_overall.dir/bench_t3_overall.cpp.o.d"
  "bench_t3_overall"
  "bench_t3_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

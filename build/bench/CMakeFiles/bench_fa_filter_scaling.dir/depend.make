# Empty dependencies file for bench_fa_filter_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fa_filter_scaling.dir/bench_fa_filter_scaling.cpp.o"
  "CMakeFiles/bench_fa_filter_scaling.dir/bench_fa_filter_scaling.cpp.o.d"
  "bench_fa_filter_scaling"
  "bench_fa_filter_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fa_filter_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fb_flowtable.dir/bench_fb_flowtable.cpp.o"
  "CMakeFiles/bench_fb_flowtable.dir/bench_fb_flowtable.cpp.o.d"
  "bench_fb_flowtable"
  "bench_fb_flowtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fb_flowtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fb_flowtable.
# This may be replaced when dependencies are built.

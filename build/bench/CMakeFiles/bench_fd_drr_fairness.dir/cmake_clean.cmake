file(REMOVE_RECURSE
  "CMakeFiles/bench_fd_drr_fairness.dir/bench_fd_drr_fairness.cpp.o"
  "CMakeFiles/bench_fd_drr_fairness.dir/bench_fd_drr_fairness.cpp.o.d"
  "bench_fd_drr_fairness"
  "bench_fd_drr_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fd_drr_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

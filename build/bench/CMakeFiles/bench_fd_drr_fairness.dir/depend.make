# Empty dependencies file for bench_fd_drr_fairness.
# This may be replaced when dependencies are built.

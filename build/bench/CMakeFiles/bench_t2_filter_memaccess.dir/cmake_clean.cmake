file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_filter_memaccess.dir/bench_t2_filter_memaccess.cpp.o"
  "CMakeFiles/bench_t2_filter_memaccess.dir/bench_t2_filter_memaccess.cpp.o.d"
  "bench_t2_filter_memaccess"
  "bench_t2_filter_memaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_filter_memaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_t2_filter_memaccess.
# This may be replaced when dependencies are built.

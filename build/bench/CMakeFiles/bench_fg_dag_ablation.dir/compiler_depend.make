# Empty compiler generated dependencies file for bench_fg_dag_ablation.
# This may be replaced when dependencies are built.

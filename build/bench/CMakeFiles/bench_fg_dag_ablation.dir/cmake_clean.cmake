file(REMOVE_RECURSE
  "CMakeFiles/bench_fg_dag_ablation.dir/bench_fg_dag_ablation.cpp.o"
  "CMakeFiles/bench_fg_dag_ablation.dir/bench_fg_dag_ablation.cpp.o.d"
  "bench_fg_dag_ablation"
  "bench_fg_dag_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fg_dag_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

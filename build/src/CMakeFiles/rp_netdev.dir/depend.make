# Empty dependencies file for rp_netdev.
# This may be replaced when dependencies are built.

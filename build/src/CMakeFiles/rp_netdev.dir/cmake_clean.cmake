file(REMOVE_RECURSE
  "CMakeFiles/rp_netdev.dir/netdev/netdev.cpp.o"
  "CMakeFiles/rp_netdev.dir/netdev/netdev.cpp.o.d"
  "librp_netdev.a"
  "librp_netdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_netdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librp_netdev.a"
)

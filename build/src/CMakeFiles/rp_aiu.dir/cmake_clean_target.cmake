file(REMOVE_RECURSE
  "librp_aiu.a"
)

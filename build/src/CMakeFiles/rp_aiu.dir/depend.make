# Empty dependencies file for rp_aiu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rp_aiu.dir/aiu/aiu.cpp.o"
  "CMakeFiles/rp_aiu.dir/aiu/aiu.cpp.o.d"
  "CMakeFiles/rp_aiu.dir/aiu/filter.cpp.o"
  "CMakeFiles/rp_aiu.dir/aiu/filter.cpp.o.d"
  "CMakeFiles/rp_aiu.dir/aiu/filter_table.cpp.o"
  "CMakeFiles/rp_aiu.dir/aiu/filter_table.cpp.o.d"
  "CMakeFiles/rp_aiu.dir/aiu/flow_table.cpp.o"
  "CMakeFiles/rp_aiu.dir/aiu/flow_table.cpp.o.d"
  "CMakeFiles/rp_aiu.dir/aiu/grid_of_tries.cpp.o"
  "CMakeFiles/rp_aiu.dir/aiu/grid_of_tries.cpp.o.d"
  "librp_aiu.a"
  "librp_aiu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_aiu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

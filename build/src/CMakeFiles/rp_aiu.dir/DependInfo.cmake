
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aiu/aiu.cpp" "src/CMakeFiles/rp_aiu.dir/aiu/aiu.cpp.o" "gcc" "src/CMakeFiles/rp_aiu.dir/aiu/aiu.cpp.o.d"
  "/root/repo/src/aiu/filter.cpp" "src/CMakeFiles/rp_aiu.dir/aiu/filter.cpp.o" "gcc" "src/CMakeFiles/rp_aiu.dir/aiu/filter.cpp.o.d"
  "/root/repo/src/aiu/filter_table.cpp" "src/CMakeFiles/rp_aiu.dir/aiu/filter_table.cpp.o" "gcc" "src/CMakeFiles/rp_aiu.dir/aiu/filter_table.cpp.o.d"
  "/root/repo/src/aiu/flow_table.cpp" "src/CMakeFiles/rp_aiu.dir/aiu/flow_table.cpp.o" "gcc" "src/CMakeFiles/rp_aiu.dir/aiu/flow_table.cpp.o.d"
  "/root/repo/src/aiu/grid_of_tries.cpp" "src/CMakeFiles/rp_aiu.dir/aiu/grid_of_tries.cpp.o" "gcc" "src/CMakeFiles/rp_aiu.dir/aiu/grid_of_tries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_plugin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_bmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

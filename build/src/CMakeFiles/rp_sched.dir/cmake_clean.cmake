file(REMOVE_RECURSE
  "CMakeFiles/rp_sched.dir/sched/drr.cpp.o"
  "CMakeFiles/rp_sched.dir/sched/drr.cpp.o.d"
  "CMakeFiles/rp_sched.dir/sched/hfsc.cpp.o"
  "CMakeFiles/rp_sched.dir/sched/hfsc.cpp.o.d"
  "CMakeFiles/rp_sched.dir/sched/policer.cpp.o"
  "CMakeFiles/rp_sched.dir/sched/policer.cpp.o.d"
  "CMakeFiles/rp_sched.dir/sched/red.cpp.o"
  "CMakeFiles/rp_sched.dir/sched/red.cpp.o.d"
  "CMakeFiles/rp_sched.dir/sched/register.cpp.o"
  "CMakeFiles/rp_sched.dir/sched/register.cpp.o.d"
  "CMakeFiles/rp_sched.dir/sched/wf2q.cpp.o"
  "CMakeFiles/rp_sched.dir/sched/wf2q.cpp.o.d"
  "CMakeFiles/rp_sched.dir/sched/wfq_altq.cpp.o"
  "CMakeFiles/rp_sched.dir/sched/wfq_altq.cpp.o.d"
  "librp_sched.a"
  "librp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librp_sched.a"
)

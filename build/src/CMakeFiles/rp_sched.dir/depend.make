# Empty dependencies file for rp_sched.
# This may be replaced when dependencies are built.

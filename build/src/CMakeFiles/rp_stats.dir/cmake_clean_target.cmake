file(REMOVE_RECURSE
  "librp_stats.a"
)

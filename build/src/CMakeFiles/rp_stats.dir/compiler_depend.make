# Empty compiler generated dependencies file for rp_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rp_stats.dir/stats/stats_plugin.cpp.o"
  "CMakeFiles/rp_stats.dir/stats/stats_plugin.cpp.o.d"
  "CMakeFiles/rp_stats.dir/stats/tcpmon_plugin.cpp.o"
  "CMakeFiles/rp_stats.dir/stats/tcpmon_plugin.cpp.o.d"
  "librp_stats.a"
  "librp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rp_ipsec.
# This may be replaced when dependencies are built.

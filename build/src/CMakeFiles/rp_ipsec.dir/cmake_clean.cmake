file(REMOVE_RECURSE
  "CMakeFiles/rp_ipsec.dir/ipsec/chacha20.cpp.o"
  "CMakeFiles/rp_ipsec.dir/ipsec/chacha20.cpp.o.d"
  "CMakeFiles/rp_ipsec.dir/ipsec/hmac.cpp.o"
  "CMakeFiles/rp_ipsec.dir/ipsec/hmac.cpp.o.d"
  "CMakeFiles/rp_ipsec.dir/ipsec/ipsec_plugins.cpp.o"
  "CMakeFiles/rp_ipsec.dir/ipsec/ipsec_plugins.cpp.o.d"
  "CMakeFiles/rp_ipsec.dir/ipsec/sha256.cpp.o"
  "CMakeFiles/rp_ipsec.dir/ipsec/sha256.cpp.o.d"
  "librp_ipsec.a"
  "librp_ipsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_ipsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librp_ipsec.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rp_core.dir/core/best_effort.cpp.o"
  "CMakeFiles/rp_core.dir/core/best_effort.cpp.o.d"
  "CMakeFiles/rp_core.dir/core/ip_core.cpp.o"
  "CMakeFiles/rp_core.dir/core/ip_core.cpp.o.d"
  "CMakeFiles/rp_core.dir/core/router.cpp.o"
  "CMakeFiles/rp_core.dir/core/router.cpp.o.d"
  "librp_core.a"
  "librp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/best_effort.cpp" "src/CMakeFiles/rp_core.dir/core/best_effort.cpp.o" "gcc" "src/CMakeFiles/rp_core.dir/core/best_effort.cpp.o.d"
  "/root/repo/src/core/ip_core.cpp" "src/CMakeFiles/rp_core.dir/core/ip_core.cpp.o" "gcc" "src/CMakeFiles/rp_core.dir/core/ip_core.cpp.o.d"
  "/root/repo/src/core/router.cpp" "src/CMakeFiles/rp_core.dir/core/router.cpp.o" "gcc" "src/CMakeFiles/rp_core.dir/core/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_aiu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_netdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_plugin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_bmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

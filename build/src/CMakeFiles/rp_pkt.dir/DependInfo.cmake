
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pkt/builder.cpp" "src/CMakeFiles/rp_pkt.dir/pkt/builder.cpp.o" "gcc" "src/CMakeFiles/rp_pkt.dir/pkt/builder.cpp.o.d"
  "/root/repo/src/pkt/flow_key.cpp" "src/CMakeFiles/rp_pkt.dir/pkt/flow_key.cpp.o" "gcc" "src/CMakeFiles/rp_pkt.dir/pkt/flow_key.cpp.o.d"
  "/root/repo/src/pkt/headers.cpp" "src/CMakeFiles/rp_pkt.dir/pkt/headers.cpp.o" "gcc" "src/CMakeFiles/rp_pkt.dir/pkt/headers.cpp.o.d"
  "/root/repo/src/pkt/packet.cpp" "src/CMakeFiles/rp_pkt.dir/pkt/packet.cpp.o" "gcc" "src/CMakeFiles/rp_pkt.dir/pkt/packet.cpp.o.d"
  "/root/repo/src/pkt/reassembly.cpp" "src/CMakeFiles/rp_pkt.dir/pkt/reassembly.cpp.o" "gcc" "src/CMakeFiles/rp_pkt.dir/pkt/reassembly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librp_pkt.a"
)

# Empty compiler generated dependencies file for rp_pkt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rp_pkt.dir/pkt/builder.cpp.o"
  "CMakeFiles/rp_pkt.dir/pkt/builder.cpp.o.d"
  "CMakeFiles/rp_pkt.dir/pkt/flow_key.cpp.o"
  "CMakeFiles/rp_pkt.dir/pkt/flow_key.cpp.o.d"
  "CMakeFiles/rp_pkt.dir/pkt/headers.cpp.o"
  "CMakeFiles/rp_pkt.dir/pkt/headers.cpp.o.d"
  "CMakeFiles/rp_pkt.dir/pkt/packet.cpp.o"
  "CMakeFiles/rp_pkt.dir/pkt/packet.cpp.o.d"
  "CMakeFiles/rp_pkt.dir/pkt/reassembly.cpp.o"
  "CMakeFiles/rp_pkt.dir/pkt/reassembly.cpp.o.d"
  "librp_pkt.a"
  "librp_pkt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_pkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

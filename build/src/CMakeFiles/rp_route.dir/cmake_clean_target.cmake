file(REMOVE_RECURSE
  "librp_route.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rp_route.dir/route/route_plugin.cpp.o"
  "CMakeFiles/rp_route.dir/route/route_plugin.cpp.o.d"
  "CMakeFiles/rp_route.dir/route/routing_table.cpp.o"
  "CMakeFiles/rp_route.dir/route/routing_table.cpp.o.d"
  "librp_route.a"
  "librp_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rp_netbase.dir/netbase/checksum.cpp.o"
  "CMakeFiles/rp_netbase.dir/netbase/checksum.cpp.o.d"
  "CMakeFiles/rp_netbase.dir/netbase/ip.cpp.o"
  "CMakeFiles/rp_netbase.dir/netbase/ip.cpp.o.d"
  "librp_netbase.a"
  "librp_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

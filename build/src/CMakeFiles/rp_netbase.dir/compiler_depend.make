# Empty compiler generated dependencies file for rp_netbase.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librp_netbase.a"
)

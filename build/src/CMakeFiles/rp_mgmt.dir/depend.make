# Empty dependencies file for rp_mgmt.
# This may be replaced when dependencies are built.

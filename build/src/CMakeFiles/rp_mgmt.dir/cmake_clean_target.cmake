file(REMOVE_RECURSE
  "librp_mgmt.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rp_mgmt.dir/mgmt/firewall_plugin.cpp.o"
  "CMakeFiles/rp_mgmt.dir/mgmt/firewall_plugin.cpp.o.d"
  "CMakeFiles/rp_mgmt.dir/mgmt/pmgr.cpp.o"
  "CMakeFiles/rp_mgmt.dir/mgmt/pmgr.cpp.o.d"
  "CMakeFiles/rp_mgmt.dir/mgmt/register_all.cpp.o"
  "CMakeFiles/rp_mgmt.dir/mgmt/register_all.cpp.o.d"
  "CMakeFiles/rp_mgmt.dir/mgmt/rplib.cpp.o"
  "CMakeFiles/rp_mgmt.dir/mgmt/rplib.cpp.o.d"
  "CMakeFiles/rp_mgmt.dir/mgmt/rsvp.cpp.o"
  "CMakeFiles/rp_mgmt.dir/mgmt/rsvp.cpp.o.d"
  "CMakeFiles/rp_mgmt.dir/mgmt/ssp.cpp.o"
  "CMakeFiles/rp_mgmt.dir/mgmt/ssp.cpp.o.d"
  "librp_mgmt.a"
  "librp_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

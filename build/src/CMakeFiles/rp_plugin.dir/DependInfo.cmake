
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plugin/loader.cpp" "src/CMakeFiles/rp_plugin.dir/plugin/loader.cpp.o" "gcc" "src/CMakeFiles/rp_plugin.dir/plugin/loader.cpp.o.d"
  "/root/repo/src/plugin/pcu.cpp" "src/CMakeFiles/rp_plugin.dir/plugin/pcu.cpp.o" "gcc" "src/CMakeFiles/rp_plugin.dir/plugin/pcu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for rp_plugin.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rp_plugin.dir/plugin/loader.cpp.o"
  "CMakeFiles/rp_plugin.dir/plugin/loader.cpp.o.d"
  "CMakeFiles/rp_plugin.dir/plugin/pcu.cpp.o"
  "CMakeFiles/rp_plugin.dir/plugin/pcu.cpp.o.d"
  "librp_plugin.a"
  "librp_plugin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librp_plugin.a"
)

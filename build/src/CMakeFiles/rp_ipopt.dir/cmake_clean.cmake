file(REMOVE_RECURSE
  "CMakeFiles/rp_ipopt.dir/ipopt/ipopt_plugins.cpp.o"
  "CMakeFiles/rp_ipopt.dir/ipopt/ipopt_plugins.cpp.o.d"
  "librp_ipopt.a"
  "librp_ipopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_ipopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rp_ipopt.
# This may be replaced when dependencies are built.

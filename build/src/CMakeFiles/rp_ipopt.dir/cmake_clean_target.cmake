file(REMOVE_RECURSE
  "librp_ipopt.a"
)

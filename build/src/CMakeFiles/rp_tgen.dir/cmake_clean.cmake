file(REMOVE_RECURSE
  "CMakeFiles/rp_tgen.dir/tgen/trace.cpp.o"
  "CMakeFiles/rp_tgen.dir/tgen/trace.cpp.o.d"
  "CMakeFiles/rp_tgen.dir/tgen/workload.cpp.o"
  "CMakeFiles/rp_tgen.dir/tgen/workload.cpp.o.d"
  "librp_tgen.a"
  "librp_tgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_tgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

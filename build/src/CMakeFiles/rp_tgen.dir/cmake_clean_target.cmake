file(REMOVE_RECURSE
  "librp_tgen.a"
)

# Empty dependencies file for rp_tgen.
# This may be replaced when dependencies are built.

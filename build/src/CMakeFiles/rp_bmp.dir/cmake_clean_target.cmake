file(REMOVE_RECURSE
  "librp_bmp.a"
)

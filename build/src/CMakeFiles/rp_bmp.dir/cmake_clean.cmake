file(REMOVE_RECURSE
  "CMakeFiles/rp_bmp.dir/bmp/cpe.cpp.o"
  "CMakeFiles/rp_bmp.dir/bmp/cpe.cpp.o.d"
  "CMakeFiles/rp_bmp.dir/bmp/engine_factory.cpp.o"
  "CMakeFiles/rp_bmp.dir/bmp/engine_factory.cpp.o.d"
  "CMakeFiles/rp_bmp.dir/bmp/patricia.cpp.o"
  "CMakeFiles/rp_bmp.dir/bmp/patricia.cpp.o.d"
  "CMakeFiles/rp_bmp.dir/bmp/waldvogel.cpp.o"
  "CMakeFiles/rp_bmp.dir/bmp/waldvogel.cpp.o.d"
  "librp_bmp.a"
  "librp_bmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_bmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rp_bmp.
# This may be replaced when dependencies are built.

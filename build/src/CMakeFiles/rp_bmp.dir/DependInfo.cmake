
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bmp/cpe.cpp" "src/CMakeFiles/rp_bmp.dir/bmp/cpe.cpp.o" "gcc" "src/CMakeFiles/rp_bmp.dir/bmp/cpe.cpp.o.d"
  "/root/repo/src/bmp/engine_factory.cpp" "src/CMakeFiles/rp_bmp.dir/bmp/engine_factory.cpp.o" "gcc" "src/CMakeFiles/rp_bmp.dir/bmp/engine_factory.cpp.o.d"
  "/root/repo/src/bmp/patricia.cpp" "src/CMakeFiles/rp_bmp.dir/bmp/patricia.cpp.o" "gcc" "src/CMakeFiles/rp_bmp.dir/bmp/patricia.cpp.o.d"
  "/root/repo/src/bmp/waldvogel.cpp" "src/CMakeFiles/rp_bmp.dir/bmp/waldvogel.cpp.o" "gcc" "src/CMakeFiles/rp_bmp.dir/bmp/waldvogel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

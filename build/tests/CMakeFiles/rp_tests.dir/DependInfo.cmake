
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aiu.cpp" "tests/CMakeFiles/rp_tests.dir/test_aiu.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_aiu.cpp.o.d"
  "/root/repo/tests/test_bmp.cpp" "tests/CMakeFiles/rp_tests.dir/test_bmp.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_bmp.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/rp_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_e2e_qos.cpp" "tests/CMakeFiles/rp_tests.dir/test_e2e_qos.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_e2e_qos.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/rp_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_filter.cpp" "tests/CMakeFiles/rp_tests.dir/test_filter.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_filter.cpp.o.d"
  "/root/repo/tests/test_filter_table.cpp" "tests/CMakeFiles/rp_tests.dir/test_filter_table.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_filter_table.cpp.o.d"
  "/root/repo/tests/test_flow_table.cpp" "tests/CMakeFiles/rp_tests.dir/test_flow_table.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_flow_table.cpp.o.d"
  "/root/repo/tests/test_grid_of_tries.cpp" "tests/CMakeFiles/rp_tests.dir/test_grid_of_tries.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_grid_of_tries.cpp.o.d"
  "/root/repo/tests/test_hfsc_curves.cpp" "tests/CMakeFiles/rp_tests.dir/test_hfsc_curves.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_hfsc_curves.cpp.o.d"
  "/root/repo/tests/test_hsf.cpp" "tests/CMakeFiles/rp_tests.dir/test_hsf.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_hsf.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rp_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ipopt.cpp" "tests/CMakeFiles/rp_tests.dir/test_ipopt.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_ipopt.cpp.o.d"
  "/root/repo/tests/test_ipsec.cpp" "tests/CMakeFiles/rp_tests.dir/test_ipsec.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_ipsec.cpp.o.d"
  "/root/repo/tests/test_live_upgrade.cpp" "tests/CMakeFiles/rp_tests.dir/test_live_upgrade.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_live_upgrade.cpp.o.d"
  "/root/repo/tests/test_mgmt.cpp" "tests/CMakeFiles/rp_tests.dir/test_mgmt.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_mgmt.cpp.o.d"
  "/root/repo/tests/test_netbase.cpp" "tests/CMakeFiles/rp_tests.dir/test_netbase.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_netbase.cpp.o.d"
  "/root/repo/tests/test_netdev_tgen.cpp" "tests/CMakeFiles/rp_tests.dir/test_netdev_tgen.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_netdev_tgen.cpp.o.d"
  "/root/repo/tests/test_pkt.cpp" "tests/CMakeFiles/rp_tests.dir/test_pkt.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_pkt.cpp.o.d"
  "/root/repo/tests/test_plugin.cpp" "tests/CMakeFiles/rp_tests.dir/test_plugin.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_plugin.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/rp_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_reassembly.cpp" "tests/CMakeFiles/rp_tests.dir/test_reassembly.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_reassembly.cpp.o.d"
  "/root/repo/tests/test_router.cpp" "tests/CMakeFiles/rp_tests.dir/test_router.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_router.cpp.o.d"
  "/root/repo/tests/test_rsvp.cpp" "tests/CMakeFiles/rp_tests.dir/test_rsvp.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_rsvp.cpp.o.d"
  "/root/repo/tests/test_sched_drr.cpp" "tests/CMakeFiles/rp_tests.dir/test_sched_drr.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_sched_drr.cpp.o.d"
  "/root/repo/tests/test_sched_hfsc.cpp" "tests/CMakeFiles/rp_tests.dir/test_sched_hfsc.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_sched_hfsc.cpp.o.d"
  "/root/repo/tests/test_sched_misc.cpp" "tests/CMakeFiles/rp_tests.dir/test_sched_misc.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_sched_misc.cpp.o.d"
  "/root/repo/tests/test_stats_route.cpp" "tests/CMakeFiles/rp_tests.dir/test_stats_route.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_stats_route.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/rp_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/rp_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_v6_features.cpp" "tests/CMakeFiles/rp_tests.dir/test_v6_features.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_v6_features.cpp.o.d"
  "/root/repo/tests/test_wf2q_policer.cpp" "tests/CMakeFiles/rp_tests.dir/test_wf2q_policer.cpp.o" "gcc" "tests/CMakeFiles/rp_tests.dir/test_wf2q_policer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_ipsec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_ipopt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_netdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_aiu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_bmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_plugin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Figure G — ablation of the design choices DESIGN.md calls out:
//   1. node collapsing (§5.1.2) on/off: DAG size and lookup accesses on a
//      wildcard-heavy filter set;
//   2. flow cache on/off: per-packet cost through the AIU with and without
//      the cache (the paper's architecture is only cheap *because* of it);
//   3. BMP plugin choice inside the classifier (patricia vs bsl vs cpe).
#include <cstdio>
#include <vector>

#include "aiu/aiu.hpp"
#include "aiu/grid_of_tries.hpp"
#include "bench_json.hpp"
#include "netbase/memaccess.hpp"
#include "plugin/pcu.hpp"
#include "tgen/workload.hpp"

using namespace rp;

namespace {

class EmptyInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};
class EmptyPlugin final : public plugin::Plugin {
 public:
  EmptyPlugin() : Plugin("e", plugin::PluginType::ipsec) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyInstance>();
  }
};

std::vector<aiu::Filter> wildcard_heavy_filters(std::size_t n) {
  tgen::FilterSetSpec spec;
  spec.count = n;
  spec.seed = 1234;
  spec.p_wild_proto = 1.0;  // protocol never specified
  spec.p_port_exact = 0.1;  // ports mostly wild
  spec.p_port_range = 0.0;
  return tgen::random_filters(spec);
}

void ablate_collapse() {
  std::printf("-- 1. node collapsing (wildcard-heavy set, 500 filters) --\n");
  std::printf("%12s %12s %16s\n", "collapse", "dag nodes", "avg accesses");
  auto filters = wildcard_heavy_filters(500);
  for (bool collapse : {false, true}) {
    aiu::DagFilterTable::Options opt;
    opt.collapse = collapse;
    aiu::DagFilterTable t(opt);
    for (const auto& f : filters) t.insert(f, nullptr);
    t.prepare();
    netbase::Rng rng(9);
    netbase::MemAccess::reset();
    const int kProbes = rp::bench::scaled(3000, 30);
    for (int i = 0; i < kProbes; ++i)
      t.lookup(tgen::matching_key(filters[rng.below(filters.size())], rng));
    std::printf("%12s %12zu %16.1f\n", collapse ? "on" : "off",
                t.node_count(),
                static_cast<double>(netbase::MemAccess::total()) / kProbes);
  }
  std::printf("\n");
}

struct CacheAblation {
  double on_accesses;
  double off_accesses;
};

CacheAblation ablate_cache() {
  CacheAblation result{};
  std::printf("-- 2. flow cache on/off (1000 filters, burst 16) --\n");
  std::printf("%12s %22s\n", "flow cache", "avg accesses/packet");
  tgen::FilterSetSpec spec;
  spec.count = 1000;
  spec.seed = 5;
  spec.p_wild_src = 0;
  spec.p_wild_dst = 0;
  auto filters = tgen::random_filters(spec);

  for (bool cache : {true, false}) {
    netbase::SimClock clock;
    plugin::PluginControlUnit pcu;
    aiu::Aiu::Options opt;
    opt.flow_cache_enabled = cache;
    aiu::Aiu aiu(pcu, clock, opt);
    pcu.register_plugin(std::make_unique<EmptyPlugin>());
    plugin::InstanceId id = plugin::kNoInstance;
    pcu.find("e")->create_instance({}, id);
    auto* inst = pcu.find("e")->instance(id);
    for (const auto& f : filters)
      aiu.create_filter(plugin::PluginType::ipsec, f, inst);
    aiu.filter_table(plugin::PluginType::ipsec)->prepare();

    netbase::Rng rng(6);
    netbase::MemAccess::reset();
    const int kFlows = 150, kBurst = 16;
    for (int fl = 0; fl < kFlows; ++fl) {
      auto ep = tgen::random_flow(rng);
      for (int i = 0; i < kBurst; ++i) {
        auto p = tgen::packet_for(ep, 64);
        aiu.gate_lookup(*p, plugin::PluginType::ipsec);
      }
    }
    const double avg = static_cast<double>(netbase::MemAccess::total()) /
                       (kFlows * kBurst);
    (cache ? result.on_accesses : result.off_accesses) = avg;
    std::printf("%12s %22.1f\n", cache ? "on" : "off", avg);
  }
  std::printf("\n");
  return result;
}

void ablate_bmp() {
  std::printf("-- 3. BMP plugin inside the classifier (5000 filters) --\n");
  std::printf("%12s %16s %16s\n", "engine", "avg accesses", "worst accesses");
  tgen::FilterSetSpec spec;
  spec.count = 5000;
  spec.seed = 77;
  spec.p_wild_src = 0;
  spec.p_wild_dst = 0;
  auto filters = tgen::random_filters(spec);
  for (const char* engine : {"patricia", "bsl", "cpe"}) {
    aiu::DagFilterTable::Options opt;
    opt.bmp_engine = engine;
    aiu::DagFilterTable t(opt);
    for (const auto& f : filters) t.insert(f, nullptr);
    t.prepare();
    netbase::Rng rng(8);
    std::uint64_t total = 0, worst = 0;
    const int kProbes = rp::bench::scaled(3000, 30);
    for (int i = 0; i < kProbes; ++i) {
      netbase::MemAccess::reset();
      t.lookup(tgen::matching_key(filters[rng.below(filters.size())], rng));
      auto a = netbase::MemAccess::total();
      total += a;
      worst = std::max(worst, a);
    }
    std::printf("%12s %16.1f %16llu\n", engine,
                static_cast<double>(total) / kProbes,
                static_cast<unsigned long long>(worst));
  }
}

void compare_grid_of_tries() {
  // §5.1.2/§8: grid-of-tries "can provide better memory utilization without
  // sacrificing performance, but works only ... two-dimensional filters".
  // Same 2D filter set through both classifiers: accesses and memory.
  std::printf(
      "-- 4. DAG vs grid-of-tries on 2D (src,dst) filters (4000 filters) --\n");
  std::printf("%16s %14s %14s %14s\n", "classifier", "avg accesses",
              "worst accesses", "nodes");
  tgen::FilterSetSpec spec;
  spec.count = 4000;
  spec.seed = 31;
  spec.p_wild_proto = 1.0;
  spec.p_port_exact = 0.0;
  spec.p_port_range = 0.0;
  spec.p_wild_src = 0.15;
  spec.p_wild_dst = 0.15;
  auto filters = tgen::random_filters(spec);
  for (auto& f : filters) f.in_iface = aiu::IfaceSpec::any();

  aiu::DagFilterTable dag;
  aiu::GridOfTries grid;
  for (const auto& f : filters) {
    dag.insert(f, nullptr);
    grid.insert(f, nullptr);
  }
  dag.prepare();
  grid.prepare();

  auto measure = [&](aiu::FilterTableBase& t, std::size_t nodes,
                     const char* name) {
    netbase::Rng rng(12);
    std::uint64_t total = 0, worst = 0;
    const int kProbes = rp::bench::scaled(3000, 30);
    for (int i = 0; i < kProbes; ++i) {
      auto k = tgen::matching_key(filters[rng.below(filters.size())], rng);
      netbase::MemAccess::reset();
      t.lookup(k);
      auto a = netbase::MemAccess::total();
      total += a;
      worst = std::max(worst, a);
    }
    std::printf("%16s %14.1f %14llu %14zu\n", name,
                static_cast<double>(total) / kProbes,
                static_cast<unsigned long long>(worst), nodes);
  };
  measure(dag, dag.node_count(), "dag");
  measure(grid, grid.node_count(), "grid-of-tries");
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure G — DAG classifier ablations\n\n");
  ablate_collapse();
  const CacheAblation cache = ablate_cache();
  ablate_bmp();
  compare_grid_of_tries();
  rp::bench::BenchJson("fg_dag_ablation")
      .num("cache_on_accesses", cache.on_accesses)
      .num("cache_off_accesses", cache.off_accesses)
      .emit();
  std::printf(
      "\nExpected shape: collapsing shrinks the DAG and trims accesses on\n"
      "wildcarded levels; the flow cache turns ~20+ accesses into ~2; BSL\n"
      "and CPE beat PATRICIA on lookup accesses.\n");
  return 0;
}

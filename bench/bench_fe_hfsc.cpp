// Figure E (§6, §7.3): H-FSC — hierarchical link-sharing and the
// delay/bandwidth decoupling that motivates service curves, plus the
// queueing-overhead comparison with DRR that the paper discusses (H-FSC
// cost corresponds to 25–37% overhead vs DRR's ~20%).
//
// Scenario (2-level hierarchy on a 10 Mb/s link):
//   root ── agencyA (60%) ──  A.voice  rt: burst 5 Mb/s for 10ms, then 1 Mb/s
//        │                └─  A.data   ls: 5 Mb/s
//        └─ agencyB (40%) ──  B.data   ls: 4 Mb/s
// A.voice is low-rate but delay-sensitive; A.data and B.data are greedy.
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_json.hpp"
#include "core/router.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"
#include "sched/drr.hpp"
#include "sched/hfsc.hpp"
#include "sched/wf2q.hpp"
#include "sched/wfq_altq.hpp"

using namespace rp;
using HClock = std::chrono::steady_clock;

namespace {

pkt::PacketPtr flow_pkt(std::uint16_t sport, std::size_t payload) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

// Returns A.voice's worst queueing delay in ms (the decoupling headline).
double link_sharing_run() {
  const std::uint64_t link = 10'000'000;
  core::RouterKernel k;
  k.add_interface("in0");
  auto& out = k.interfaces().add("out0", link);
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  mgmt::RouterPluginLib lib(k);
  lib.modload("hfsc");
  plugin::InstanceId id = plugin::kNoInstance;
  plugin::Config cfg;
  cfg.set("bandwidth_bps", std::to_string(link));
  lib.create_instance("hfsc", cfg, id);
  lib.attach_scheduler("hfsc", id, 1);

  auto addclass = [&](const char* name, const char* parent, long ls_bps,
                      long rt_m1 = 0, long rt_d_us = 0, long rt_m2 = 0) {
    plugin::Config c;
    c.set("name", name);
    c.set("parent", parent);
    c.set("ls_m1", std::to_string(ls_bps));
    c.set("ls_m2", std::to_string(ls_bps));
    if (rt_m2 || rt_m1) {
      c.set("rt_m1", std::to_string(rt_m1));
      c.set("rt_d_us", std::to_string(rt_d_us));
      c.set("rt_m2", std::to_string(rt_m2));
    }
    lib.message("hfsc", id, "addclass", c);
  };
  addclass("agencyA", "root", 6'000'000);
  addclass("agencyB", "root", 4'000'000);
  addclass("A.voice", "agencyA", 1'000'000, 5'000'000, 10'000, 1'000'000);
  addclass("A.data", "agencyA", 5'000'000);
  addclass("B.data", "agencyB", 4'000'000);

  auto bind = [&](const char* cls, int sport) {
    plugin::Config c;
    c.set("class", cls);
    c.set("filter", "<*, *, udp, " + std::to_string(sport) + ", *, *>");
    lib.message("hfsc", id, "bindclass", c);
  };
  bind("A.voice", 1);
  bind("A.data", 2);
  bind("B.data", 3);

  std::map<std::uint16_t, std::uint64_t> bytes;
  std::map<std::uint16_t, double> worst_delay;
  out.set_tx_sink([&](pkt::PacketPtr p, netbase::SimTime t) {
    bytes[p->key.sport] += p->size();
    double d = static_cast<double>(t - p->arrival) / 1e6;  // ms
    if (d > worst_delay[p->key.sport]) worst_delay[p->key.sport] = d;
  });

  const netbase::SimTime dur = netbase::kNsPerSec;
  // Voice: 200-byte packets at 1 Mb/s (1.6 ms spacing).
  for (netbase::SimTime t = 0; t < dur; t += 1'600'000)
    k.inject(t, 0, flow_pkt(1, 172));
  // Greedy data flows: each offers the whole link.
  for (netbase::SimTime t = 0; t < dur; t += 1'000'000) {
    k.inject(t, 0, flow_pkt(2, 1222));  // 1250B at 10 Mb/s
    k.inject(t, 0, flow_pkt(3, 1222));
  }
  k.run_until(dur);

  std::printf("-- hierarchical link sharing (1 s, 10 Mb/s link) --\n");
  std::printf("%10s %10s %14s %14s %16s\n", "class", "flow", "goodput bps",
              "expected bps", "worst delay ms");
  const char* names[3] = {"A.voice", "A.data", "B.data"};
  // Voice takes its 1 Mb/s; A.data gets agencyA's remaining 5 Mb/s;
  // B.data gets agencyB's 4 Mb/s.
  double expect[3] = {1e6, 5e6, 4e6};
  for (int f = 1; f <= 3; ++f) {
    double bps = static_cast<double>(bytes[f]) * 8;
    std::printf("%10s %10d %14.0f %14.0f %16.2f\n", names[f - 1], f, bps,
                expect[f - 1], worst_delay[f]);
  }
  std::printf(
      "\nDecoupling check: A.voice's worst queueing delay stays small (its\n"
      "rt curve m1 drains bursts at 5 Mb/s) although its bandwidth share\n"
      "is only 1 Mb/s — delay is decoupled from rate.\n\n");
  return worst_delay[1];
}

struct OverheadResult {
  double drr_ns;
  double hfsc_ns;
};

OverheadResult overhead_run() {
  // Enqueue+dequeue CPU cost: DRR vs H-FSC (the paper quotes H-FSC's
  // 6.8-10.3 us on a P200 ~ 25-37% overhead vs DRR's ~20%).
  const int kOps = rp::bench::scaled(200'000, 2000);

  sched::DrrInstance drr({});
  sched::HfscInstance hfsc({10'000'000, 4096});
  // Give hfsc a small hierarchy so the vt machinery is exercised.
  hfsc.add_class("a", "root", {}, {625'000, 0, 625'000}, {});
  hfsc.add_class("b", "root", {}, {625'000, 0, 625'000}, {});
  hfsc.bind_class(*aiu::Filter::parse("* * udp 1 * *"), "a");
  hfsc.bind_class(*aiu::Filter::parse("* * udp 2 * *"), "b");

  auto measure = [&](core::OutputScheduler& s, const char* name) {
    void* soft[2] = {};
    // Pre-build packets outside the timed loop.
    std::vector<pkt::PacketPtr> pkts;
    pkts.reserve(64);
    for (int i = 0; i < 64; ++i)
      pkts.push_back(flow_pkt(static_cast<std::uint16_t>(1 + i % 2), 472));

    auto t0 = HClock::now();
    int done = 0;
    netbase::SimTime now = 0;
    while (done < kOps) {
      for (int b = 0; b < 32 && done < kOps; ++b, ++done) {
        auto p = pkt::clone_packet(*pkts[done % 64]);
        p->arrival = now;
        s.enqueue(std::move(p), &soft[done % 2], now);
        now += 1000;
      }
      while (auto p = s.dequeue(now)) p.reset();
    }
    auto t1 = HClock::now();
    double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kOps;
    std::printf("%10s  %10.0f ns per enqueue+dequeue\n", name, ns);
    return ns;
  };

  std::printf("-- scheduler CPU overhead (enqueue+dequeue pair) --\n");
  sched::Wf2qInstance wf2q({});
  sched::AltqWfqInstance altq(256, 1500, 4096);
  double d = measure(drr, "DRR");
  measure(altq, "ALTQ-WFQ");
  measure(wf2q, "WF2Q+");
  double h = measure(hfsc, "H-FSC");
  std::printf("H-FSC / DRR cost ratio: %.2f (paper: H-FSC costlier; its\n",
              h / d);
  std::printf("queueing corresponds to 25-37%% kernel overhead vs DRR ~20%%)\n");
  return {d, h};
}

}  // namespace

int main() {
  std::printf("Figure E — H-FSC: hierarchy, decoupling, and overhead\n\n");
  mgmt::register_builtin_modules();
  const double voice_delay_ms = link_sharing_run();
  const OverheadResult o = overhead_run();
  rp::bench::BenchJson("fe_hfsc")
      .num("voice_worst_delay_ms", voice_delay_ms)
      .num("drr_ns", o.drr_ns)
      .num("hfsc_ns", o.hfsc_ns)
      .num("hfsc_vs_drr_ratio", o.drr_ns ? o.hfsc_ns / o.drr_ns : 0.0)
      .emit();
  return 0;
}

// T6 (PR 3): cost of the resilience supervisor on the burst datapath.
//
// Same Table-3-style workload as T4/T5 (UDP flows, 16 filters, 3 empty-plugin
// gates, trains of 4, bursts of 32), measured in three configurations:
//
//   none      no Supervisor attached — the raw dispatch path
//   disarmed  Supervisor attached and *quiet* (no injection rules, no
//             cycle budgets, all breakers closed): every dispatch is one
//             flag check + try/catch + verdict range check
//   armed     1% probabilistic exception injection at one gate — the
//             slow path with fault recording, fail-open recovery
//
// The contract (docs/resilience.md): the disarmed guard must cost <= 1%
// over `none`, because table-based unwinding makes the try/catch free when
// nothing throws. `overhead_rel_disarmed` in the BENCH_JSON line is the
// number the acceptance criterion reads.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "core/ip_core.hpp"
#include "plugin/pcu.hpp"
#include "resilience/resilience.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

const std::size_t kFlows = rp::bench::scaled<std::size_t>(1 << 18, 1 << 10);
constexpr std::size_t kTrainLen = 4;
constexpr std::size_t kBatch = 8192;
const int kReps = rp::bench::scaled(48, 1);
constexpr std::size_t kPayload = 512;
constexpr std::size_t kBurst = 32;

class EmptyInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};
class EmptyPlugin final : public plugin::Plugin {
 public:
  EmptyPlugin(std::string name, plugin::PluginType t)
      : Plugin(std::move(name), t) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyInstance>();
  }
};

tgen::FlowEndpoints endpoints(std::size_t f) {
  tgen::FlowEndpoints ep;
  ep.src = netbase::IpAddr(netbase::Ipv4Addr(
      10, static_cast<std::uint8_t>(f >> 16), static_cast<std::uint8_t>(f >> 8),
      static_cast<std::uint8_t>(f)));
  ep.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  ep.proto = 17;
  ep.sport = static_cast<std::uint16_t>(1024 + (f % 60000));
  ep.dport = 9000;
  return ep;
}

void install_filters(aiu::Aiu& aiu, plugin::PluginType gate,
                     plugin::PluginInstance* inst) {
  for (int i = 0; i < 13; ++i) {
    aiu::Filter f;
    f.src = *netbase::IpPrefix::parse("99.77." + std::to_string(i) + ".0/24");
    f.proto = aiu::ProtoSpec::exact(6);
    aiu.create_filter(gate, f, inst);
  }
  aiu::Filter all = *aiu::Filter::parse("10.0.0.0/8 * udp * * *");
  aiu.create_filter(gate, all, inst);
}

struct Bench {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  std::unique_ptr<aiu::Aiu> aiu;
  route::RoutingTable routes{"bsl"};
  netdev::InterfaceTable ifs;
  std::unique_ptr<core::IpCore> core;
  // Destroyed before pcu (member order), so the supervisor's destructor can
  // still null each live instance's cached guard slot.
  std::unique_ptr<resilience::Supervisor> sup;

  Bench() {
    aiu::Aiu::Options aopt;
    aopt.initial_flows = kFlows;
    aopt.flow_buckets = kFlows * 2;
    aiu = std::make_unique<aiu::Aiu>(pcu, clock, aopt);
    ifs.add("if0");
    ifs.add("if1");
    routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

    core::CoreConfig cfg;
    cfg.input_gates = {plugin::PluginType::ipopt, plugin::PluginType::ipsec,
                       plugin::PluginType::stats};
    cfg.port_fifo_limit = kBatch + 64;
    core = std::make_unique<core::IpCore>(*aiu, routes, ifs, clock, cfg);

    resilience::Supervisor::Options sopt;
    // Error budget wide enough that the 1% armed run never trips a
    // breaker — this bench measures dispatch cost, not recovery.
    sopt.breaker.window = 64;
    sopt.breaker.max_faults = 64;
    sup = std::make_unique<resilience::Supervisor>(sopt);
    sup->set_aiu(aiu.get());
    sup->set_clock(&clock);

    const plugin::PluginType gates[3] = {plugin::PluginType::ipopt,
                                         plugin::PluginType::ipsec,
                                         plugin::PluginType::stats};
    const char* names[3] = {"e1", "e2", "e3"};
    for (int g = 0; g < 3; ++g) {
      pcu.register_plugin(std::make_unique<EmptyPlugin>(names[g], gates[g]));
      plugin::InstanceId id = plugin::kNoInstance;
      pcu.find(names[g])->create_instance({}, id);
      install_filters(*aiu, gates[g], pcu.find(names[g])->instance(id));
    }
  }

  // All three configurations run on this one router: the supervisor is
  // attached/detached at run time so only the code path differs between
  // measurements, never the heap/cache placement of the flow table. (A
  // router-per-config layout was tried first; inter-instance placement
  // skew alone produced ±2–3% run-to-run bias, swamping the effect.)
  void attach(bool on) { core->set_resilience(on ? sup.get() : nullptr); }

  void arm(bool on) {
    if (on)
      sup->set_injection(plugin::PluginType::ipopt,
                         resilience::FaultKind::exception,
                         {.probability = 0.01});
    else
      sup->clear_injection();
  }
};

void make_batch(std::vector<pkt::PacketPtr>& batch, std::uint64_t seed) {
  netbase::Rng rng(seed);
  batch.clear();
  while (batch.size() < kBatch) {
    const auto ep = endpoints(rng.below(kFlows));
    for (std::size_t i = 0; i < kTrainLen && batch.size() < kBatch; ++i)
      batch.push_back(tgen::packet_for(ep, kPayload));
  }
}

void warmup(Bench& b) {
  for (std::size_t f = 0; f < kFlows; ++f)
    b.core->process(tgen::packet_for(endpoints(f), kPayload));
  while (b.core->next_for_tx(1, 0)) {
  }
}

// One pass over the batch, alternating the supervisor attachment every
// burst: even bursts run the baseline (detached), odd bursts the measured
// configuration, `flip` swapping the roles so neither side systematically
// gets the first (coldest) burst. Both sides therefore ride the identical
// cache/frequency warm-up curve microseconds apart — consecutive identical
// passes on this machine differ by up to 27% (cold vs warmed), so any
// scheme that times whole passes measures position, not configuration.
// The switch itself is one pointer store (IpCore::set_resilience).
//
// Each burst's ns/packet is recorded individually: a millisecond-scale
// preemption then shows up as a handful of outlier bursts that the median
// discards, instead of silently inflating whichever side's per-pass sum it
// happened to land in.
void timed_alternating(Bench& b, std::vector<pkt::PacketPtr>& batch,
                       bool flip, std::vector<double>& base,
                       std::vector<double>& conf) {
  bool measured = flip;
  for (std::size_t off = 0; off < batch.size(); off += kBurst) {
    const std::size_t len = std::min(kBurst, batch.size() - off);
    b.attach(measured);
    const auto t0 = Clock::now();
    b.core->process_burst({batch.data() + off, len});
    const auto t1 = Clock::now();
    (measured ? conf : base)
        .push_back(std::chrono::duration<double, std::nano>(t1 - t0).count() /
                   static_cast<double>(len));
    measured = !measured;
  }
  pkt::PacketPtr out;
  while ((out = b.core->next_for_tx(1, 0))) out.reset();
}

double median(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main() {
  std::printf(
      "T6 — Resilience supervisor overhead on the burst datapath\n"
      "(Table-3 style: UDP, 16 filters, 3 empty gates; %zu flows, trains of "
      "%zu,\n bursts of %zu, %zu-packet reps x %d)\n\n",
      kFlows, kTrainLen, kBurst, kBatch, kReps);

  rp::bench::BenchJson json("t6_resilience");
  json.num("flows", static_cast<double>(kFlows));
  json.num("burst", static_cast<double>(kBurst));

  // One router, warmed to the cached steady state; reps interleave the
  // configurations (attach/detach at run time) so machine drift hits all
  // three equally and all three share one memory layout.
  Bench bench;
  warmup(bench);

  std::vector<pkt::PacketPtr> batch;
  batch.reserve(kBatch);
  // Per rep: one burst-alternating pass comparing detached vs disarmed,
  // one comparing detached vs armed (its own flow sample). `flip`
  // alternates per rep which side of the even/odd split each
  // configuration gets.
  std::vector<double> nd_base, nd_conf, na_base, na_conf;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(rep);
    const bool flip = (rep & 1) != 0;
    bench.arm(false);
    make_batch(batch, seed);
    timed_alternating(bench, batch, flip, nd_base, nd_conf);
    bench.arm(true);
    make_batch(batch, seed + 500000);
    timed_alternating(bench, batch, flip, na_base, na_conf);
    bench.arm(false);
  }
  bench.attach(true);  // leave attached+disarmed for the stats below

  // Reported overhead = ratio of per-burst medians, each config against
  // the baseline bursts interleaved with it in the same passes.
  const double none_ns = median(nd_base);
  const double dis_ns = median(nd_conf);
  const double armed_base_ns = median(na_base);
  const double armed_ns = median(na_conf);
  const double dis_over = dis_ns / none_ns - 1.0;
  const double armed_over = armed_ns / armed_base_ns - 1.0;
  std::printf("%10s %12s %10s\n", "resilience", "ns/packet", "overhead");
  std::printf("%10s %12.1f %9.2f%%\n", "none", none_ns, 0.0);
  std::printf("%10s %12.1f %9.2f%%\n", "disarmed", dis_ns, 100.0 * dis_over);
  std::printf("%10s %12.1f %9.2f%%\n", "armed", armed_ns, 100.0 * armed_over);
  json.num("none_ns", none_ns);
  json.num("disarmed_ns", dis_ns);
  json.num("overhead_rel_disarmed", dis_over);
  json.num("armed_ns", armed_ns);
  json.num("overhead_rel_armed", armed_over);
  json.emit();

  // Show the armed reps actually injected: ~1% of their ipopt dispatches
  // faulted and were contained fail-open.
  {
    const auto& s = *bench.sup;
    std::printf("\narmed reps: faults=%llu (all injected: %s), "
                "breaker opens=%llu\n",
                static_cast<unsigned long long>(s.faults_total()),
                s.faults_injected() == s.faults_total() ? "yes" : "NO",
                static_cast<unsigned long long>(s.breaker_opens()));
  }
  std::printf(
      "\nDisarmed (quiet supervisor), every dispatch pays one flag load, a\n"
      "try/catch frame (free via table-based unwinding), and a verdict\n"
      "range check — no per-instance state, no stores: breaker windows\n"
      "ride the core's gate-dispatch counter and guards materialize only\n"
      "on faults. The acceptance budget is overhead_rel_disarmed <= 0.01.\n");
  return 0;
}

// Table 11 — live control plane under churn (docs/control_plane.md):
//
//   * per-update route latency against a ~1M-prefix CPE table (incremental
//     trie maintenance; every update is one apply_batch of one op),
//   * batched filter churn throughput through the DAG patch path,
//   * worst-case packet-path stall during a versioned plugin upgrade,
//     against the flush-and-reclassify reference the patch path replaces.
//
// A differential sweep (incremental table vs std::map oracle) runs inside
// the bench and the misroute count is asserted zero — perf numbers from a
// wrong table are worthless. Non-smoke runs also assert the two headline
// bounds the acceptance gate names: filter churn >= 1k ops/s and upgrade
// stall strictly below the rebuild reference.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "core/router.hpp"
#include "ctrl/control_plane.hpp"
#include "stats/stats_plugin.hpp"
#include "tgen/churn.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

double ns_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

struct Quantiles {
  double p50, p99, max;
};

Quantiles quantiles(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  auto at = [&](double q) {
    return v[std::min(v.size() - 1,
                      static_cast<std::size_t>(q * double(v.size())))];
  };
  return {at(0.50), at(0.99), v.back()};
}

// -- route update latency at ~1M prefixes ---------------------------------

struct RouteResult {
  std::size_t prefixes;
  Quantiles update_ns;
  double build_ms;
  std::size_t misroutes;
};

RouteResult run_route_churn() {
  const std::size_t base = bench::scaled<std::size_t>(1'000'000, 20'000);
  const std::size_t ops = bench::scaled<std::size_t>(4096, 64);

  tgen::RouteChurnSpec spec;
  spec.base_prefixes = base;
  spec.ops = ops;
  spec.batch_size = 1;  // one op per batch: the per-update latency
  spec.min_len = 8;
  spec.max_len = 28;
  spec.ifaces = 16;
  spec.seed = 1102;
  const tgen::RouteChurn churn = tgen::route_churn(spec);

  route::RoutingTable table("cpe");
  const auto t_build = Clock::now();
  for (std::size_t i = 0; i < churn.base.size(); ++i)
    table.add(churn.base[i], churn.base_hops[i]);
  table.lookup(netbase::IpAddr(netbase::Ipv4Addr(1, 2, 3, 4)));  // lazy build
  const double build_ms = ns_since(t_build) / 1e6;

  std::vector<double> lat;
  lat.reserve(churn.batches.size());
  for (const auto& b : churn.batches) {
    const auto t0 = Clock::now();
    table.apply_batch(b);
    lat.push_back(ns_since(t0));
  }

  // Differential check: the churned table vs a brute-force oracle over the
  // final live set. Any mismatch is a misroute and fails the bench.
  std::map<std::pair<netbase::U128, std::uint8_t>, pkt::IfIndex> live;
  for (std::size_t i = 0; i < churn.base.size(); ++i)
    live[{churn.base[i].addr.key(), churn.base[i].len}] =
        churn.base_hops[i].out_iface;
  for (const auto& b : churn.batches)
    for (const auto& op : b) {
      if (op.kind == route::RouteOp::Kind::add)
        live[{op.prefix.addr.key(), op.prefix.len}] = op.hop.out_iface;
      else
        live.erase({op.prefix.addr.key(), op.prefix.len});
    }
  std::size_t misroutes = 0;
  netbase::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const netbase::IpAddr dst{
        netbase::Ipv4Addr(static_cast<std::uint32_t>(rng.next()))};
    const netbase::U128 key = dst.key();
    std::optional<pkt::IfIndex> want;
    int want_len = -1;
    for (const auto& [k, ifx] : live)
      if (static_cast<int>(k.second) > want_len &&
          (key & netbase::U128::prefix_mask(k.second)) == k.first) {
        want = ifx;
        want_len = k.second;
      }
    const route::NextHop* got = table.lookup(dst);
    if ((got != nullptr) != want.has_value() ||
        (got && got->out_iface != *want))
      ++misroutes;
  }

  return {table.size(), quantiles(lat), build_ms, misroutes};
}

// -- filter churn throughput ----------------------------------------------

double run_filter_churn() {
  core::RouterKernel::Options opt;
  opt.core.input_gates = {plugin::PluginType::firewall};
  core::RouterKernel kernel(opt);
  kernel.add_interface("if0");
  kernel.add_interface("if1");

  kernel.pcu().register_plugin(std::make_unique<stats::StatsPlugin>());
  plugin::InstanceId id = plugin::kNoInstance;
  kernel.pcu().find("stats")->create_instance({}, id);

  tgen::FilterChurnSpec spec;
  spec.base.count = 512;
  spec.base.seed = 47;
  spec.ops = bench::scaled<std::size_t>(8192, 128);
  spec.batch_size = 64;
  spec.seed = 48;
  const tgen::FilterChurn churn = tgen::filter_churn(spec);

  ctrl::ControlPlane cp(kernel);
  std::vector<ctrl::FilterSpecOp> base_ops;
  for (const auto& f : churn.base)
    base_ops.push_back({aiu::Aiu::FilterOp::Kind::add, "stats", id, f});
  cp.apply_filter_batch(base_ops);

  std::size_t total_ops = 0;
  const auto t0 = Clock::now();
  for (const auto& batch : churn.batches) {
    std::vector<ctrl::FilterSpecOp> ops;
    ops.reserve(batch.size());
    for (const auto& op : batch)
      ops.push_back({op.remove ? aiu::Aiu::FilterOp::Kind::remove
                               : aiu::Aiu::FilterOp::Kind::add,
                     "stats", id, op.filter});
    cp.apply_filter_batch(ops);
    total_ops += batch.size();
  }
  const double secs = ns_since(t0) / 1e9;
  return static_cast<double>(total_ops) / secs;
}

// -- upgrade stall vs flush-and-reclassify reference ----------------------

struct UpgradeResult {
  double stall_ns;      // handoff path: the packet path is blocked this long
  double reference_ns;  // legacy path: flush + reclassify every live flow
  std::size_t flows;
};

UpgradeResult run_upgrade_stall() {
  const std::size_t n_flows = bench::scaled<std::size_t>(8192, 64);

  core::RouterKernel::Options opt;
  opt.core.input_gates = {plugin::PluginType::stats};
  opt.flow_sweep_interval = 0;  // nothing expires mid-measurement
  core::RouterKernel kernel(opt);
  kernel.add_interface("if0");
  kernel.add_interface("if1");
  kernel.routes().add(netbase::IpPrefix{}, {1, {}});

  kernel.pcu().register_plugin(std::make_unique<stats::StatsPlugin>());
  plugin::Plugin* st = kernel.pcu().find("stats");
  plugin::InstanceId id1 = plugin::kNoInstance, id2 = plugin::kNoInstance;
  st->create_instance({}, id1);
  st->create_instance({}, id2);
  kernel.aiu().create_filter(plugin::PluginType::stats,
                             *aiu::Filter::parse("<*, *, *, *, *, *>"),
                             st->instance(id1));

  // Populate the flow cache: n distinct flows, soft state on v1.
  netbase::Rng rng(7);
  std::vector<pkt::FlowKey> keys;
  for (std::size_t i = 0; i < n_flows; ++i) {
    tgen::FlowEndpoints ep = tgen::random_flow(rng);
    keys.push_back(ep.key());
    kernel.core().process(tgen::packet_for(ep, 64));
    while (kernel.core().next_for_tx(1, kernel.clock().now())) {
    }
  }

  // Reference first (it leaves the cache cold; the handoff run repopulates).
  // The pre-PR8 recipe for replacing an instance: rewrite the filter (full
  // flow-cache flush), then eat the reclassification of every live flow.
  const aiu::Filter wild = *aiu::Filter::parse("<*, *, *, *, *, *>");
  const auto t_ref = Clock::now();
  kernel.aiu().create_filter(plugin::PluginType::stats, wild,
                             st->instance(id2));  // rebind => flush
  for (const auto& k : keys) {
    tgen::FlowEndpoints ep;
    ep.src = k.src;
    ep.dst = k.dst;
    ep.proto = k.proto;
    ep.sport = k.sport;
    ep.dport = k.dport;
    ep.in_iface = k.in_iface;
    kernel.core().process(tgen::packet_for(ep, 64));  // cache miss
    while (kernel.core().next_for_tx(1, kernel.clock().now())) {
    }
  }
  const double reference_ns = ns_since(t_ref);

  // Put the filter (and the now-warm cache) back on v1, then measure the
  // handoff itself: this is the longest interval the packet path can stall
  // while an upgrade is applied at a burst boundary.
  kernel.aiu().handoff_instance(st->instance(id2), st->instance(id1));
  const auto t_up = Clock::now();
  kernel.aiu().handoff_instance(st->instance(id1), st->instance(id2));
  const double stall_ns = ns_since(t_up);

  return {stall_ns, reference_ns, n_flows};
}

}  // namespace

int main() {
  const RouteResult rt = run_route_churn();
  const double filter_ops = run_filter_churn();
  const UpgradeResult up = run_upgrade_stall();

  std::printf("Table 11 — control-plane churn (%zu-prefix cpe table)\n\n",
              rt.prefixes);
  std::printf("route table build (bulk)            %12.1f ms\n", rt.build_ms);
  std::printf("route update latency      p50 %9.0f ns   p99 %9.0f ns   "
              "max %9.0f ns\n",
              rt.update_ns.p50, rt.update_ns.p99, rt.update_ns.max);
  std::printf("differential misroutes              %12zu\n", rt.misroutes);
  std::printf("filter churn throughput             %12.0f ops/s\n",
              filter_ops);
  std::printf("upgrade stall (%zu flows)          %12.0f ns\n", up.flows,
              up.stall_ns);
  std::printf("flush+reclassify reference          %12.0f ns  (%.1fx)\n",
              up.reference_ns, up.reference_ns / up.stall_ns);

  bench::BenchJson("t11_churn")
      .num("prefixes", static_cast<double>(rt.prefixes))
      .num("route_update_ns_p50", rt.update_ns.p50)
      .num("route_update_ns_p99", rt.update_ns.p99)
      .num("route_update_ns_max", rt.update_ns.max)
      .num("misroutes", static_cast<double>(rt.misroutes))
      .num("filter_churn_ops_per_s", filter_ops)
      .num("upgrade_stall_ns", up.stall_ns)
      .num("rebuild_ref_ns", up.reference_ns)
      .num("upgrade_speedup", up.reference_ns / up.stall_ns)
      .emit();

  if (rt.misroutes != 0) {
    std::fprintf(stderr, "FAIL: %zu misroutes after churn\n", rt.misroutes);
    return 1;
  }
  if (!bench::smoke_mode()) {
    // The acceptance bounds (ISSUE: filter churn >= 1k ops/s; upgrade stall
    // bounded by — here: strictly below — the full-rebuild reference).
    if (filter_ops < 1000.0) {
      std::fprintf(stderr, "FAIL: filter churn %.0f ops/s < 1000\n",
                   filter_ops);
      return 1;
    }
    if (up.stall_ns >= up.reference_ns) {
      std::fprintf(stderr,
                   "FAIL: upgrade stall %.0f ns not below rebuild "
                   "reference %.0f ns\n",
                   up.stall_ns, up.reference_ns);
      return 1;
    }
  }
  return 0;
}

// Table 3 reproduction: overall per-packet processing time for four kernel
// configurations, with the paper's workload — three concurrent UDP flows of
// 8 KB datagrams, 16 installed filters, 100 packets per flow repeated many
// times:
//
//   row 1: unmodified best-effort kernel            (paper: 6460 cyc, 1.00)
//   row 2: plugin architecture, 3 empty-plugin gates (paper: 6970 cyc, 1.08)
//   row 3: stock kernel + ALTQ-style WFQ/DRR        (paper: 8160 cyc, 1.26)
//   row 4: plugin architecture + DRR plugin          (paper: 8110 cyc, 1.26)
//
// Absolute times differ from a 233 MHz PPro, but the *relative overheads*
// are the result: the modular architecture adds ~8%, and plugin DRR matches
// monolithic ALTQ DRR.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "core/best_effort.hpp"
#include "core/ip_core.hpp"
#include "plugin/pcu.hpp"
#include "sched/drr.hpp"
#include "sched/wfq_altq.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kFlows = 3;
constexpr int kPacketsPerFlow = 100;
const int kReps = rp::bench::scaled(1000, 2);
constexpr std::size_t kPayload = 8192;  // 8 KB datagrams, no fragmentation

// An empty plugin: the paper's row-2 measurement calls plugins that do
// nothing, isolating the cost of classification + indirect calls.
class EmptyInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};
class EmptyPlugin final : public plugin::Plugin {
 public:
  EmptyPlugin(std::string name, plugin::PluginType t)
      : Plugin(std::move(name), t) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyInstance>();
  }
};

std::vector<tgen::FlowEndpoints> flows() {
  std::vector<tgen::FlowEndpoints> out;
  for (int f = 0; f < kFlows; ++f) {
    tgen::FlowEndpoints ep;
    ep.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0,
                                               static_cast<std::uint8_t>(f + 1)));
    ep.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    ep.proto = 17;
    ep.sport = static_cast<std::uint16_t>(5000 + f);
    ep.dport = 9000;
    out.push_back(ep);
  }
  return out;
}

// Installs the paper's 16 filters: a catch-all per active gate for the three
// flows plus padding filters that never match.
void install_filters(aiu::Aiu& aiu, plugin::PluginType gate,
                     plugin::PluginInstance* inst) {
  int installed = 0;
  for (int i = 0; i < 13; ++i) {
    aiu::Filter f;
    f.src = *netbase::IpPrefix::parse(
        ("99.77." + std::to_string(i) + ".0/24"));
    f.proto = aiu::ProtoSpec::exact(6);
    aiu.create_filter(gate, f, inst);
    ++installed;
  }
  aiu::Filter all = *aiu::Filter::parse("10.0.0.0/8 * udp * * *");
  aiu.create_filter(gate, all, inst);
  ++installed;
  (void)installed;
}

// Drives `process` + output drain over the workload; returns avg ns/packet.
template <typename CoreT>
double drive(CoreT& core, const std::vector<tgen::FlowEndpoints>& eps) {
  // Warmup: populate the flow cache exactly like steady-state operation.
  std::vector<pkt::PacketPtr> batch;
  batch.reserve(kFlows * kPacketsPerFlow);

  auto make_batch = [&] {
    batch.clear();
    for (int i = 0; i < kPacketsPerFlow; ++i)
      for (const auto& ep : eps) batch.push_back(tgen::packet_for(ep, kPayload));
  };

  make_batch();
  for (auto& p : batch) core.process(std::move(p));
  while (core.next_for_tx(1, 0)) {
  }

  double total_ns = 0;
  std::size_t total_pkts = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    make_batch();  // packet construction excluded from the timing
    auto t0 = Clock::now();
    for (auto& p : batch) core.process(std::move(p));
    pkt::PacketPtr out;
    while ((out = core.next_for_tx(1, 0))) out.reset();
    auto t1 = Clock::now();
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    total_pkts += kFlows * kPacketsPerFlow;
  }
  return total_ns / static_cast<double>(total_pkts);
}

double run_unmodified() {
  route::RoutingTable routes("bsl");
  netdev::InterfaceTable ifs;
  ifs.add("if0");
  ifs.add("if1");
  routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  core::BestEffortCore core(routes, ifs);
  return drive(core, flows());
}

double run_plugin_arch() {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  aiu::Aiu aiu(pcu, clock);
  route::RoutingTable routes("bsl");
  netdev::InterfaceTable ifs;
  ifs.add("if0");
  ifs.add("if1");
  routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

  // Three gates calling empty plugins, as in the paper's measurement.
  core::CoreConfig cfg;
  cfg.input_gates = {plugin::PluginType::ipopt, plugin::PluginType::ipsec,
                     plugin::PluginType::stats};
  core::IpCore core(aiu, routes, ifs, clock, cfg);

  const plugin::PluginType gates[3] = {plugin::PluginType::ipopt,
                                       plugin::PluginType::ipsec,
                                       plugin::PluginType::stats};
  const char* names[3] = {"e1", "e2", "e3"};
  for (int g = 0; g < 3; ++g) {
    pcu.register_plugin(std::make_unique<EmptyPlugin>(names[g], gates[g]));
    plugin::InstanceId id = plugin::kNoInstance;
    pcu.find(names[g])->create_instance({}, id);
    install_filters(aiu, gates[g], pcu.find(names[g])->instance(id));
  }
  return drive(core, flows());
}

double run_altq_drr() {
  route::RoutingTable routes("bsl");
  netdev::InterfaceTable ifs;
  ifs.add("if0");
  ifs.add("if1");
  routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  core::BestEffortCore core(routes, ifs);
  sched::AltqWfqInstance wfq(256, 9000, 512);  // ALTQ defaults, 8 KB quantum
  core.set_port_scheduler(1, &wfq);
  return drive(core, flows());
}

double run_plugin_drr() {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  aiu::Aiu aiu(pcu, clock);
  route::RoutingTable routes("bsl");
  netdev::InterfaceTable ifs;
  ifs.add("if0");
  ifs.add("if1");
  routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

  // Only the packet scheduling gate is active ("only one gate for packet
  // scheduling in case DRR was turned on").
  core::CoreConfig cfg;
  cfg.input_gates = {};
  core::IpCore core(aiu, routes, ifs, clock, cfg);

  pcu.register_plugin(std::make_unique<sched::DrrPlugin>());
  plugin::InstanceId id = plugin::kNoInstance;
  plugin::Config dcfg;
  dcfg.set("quantum", "9000");
  dcfg.set("limit", "512");
  pcu.find("drr")->create_instance(dcfg, id);
  auto* inst = pcu.find("drr")->instance(id);
  install_filters(aiu, plugin::PluginType::sched, inst);
  core.set_port_scheduler(
      1, static_cast<core::OutputScheduler*>(inst));
  return drive(core, flows());
}

}  // namespace

int main() {
  std::printf(
      "Table 3 — Overall packet processing time\n"
      "(3 UDP flows, 8 KB datagrams, 16 filters, %d pkts/flow x %d reps)\n\n",
      kPacketsPerFlow, kReps);

  struct Row {
    const char* name;
    double ns;
    double paper_rel;
  };
  double base = run_unmodified();
  Row rows[] = {
      {"Unmodified (best-effort) kernel", base, 1.00},
      {"Plugin architecture, 3 empty gates", run_plugin_arch(), 1.08},
      {"Best-effort + ALTQ WFQ/DRR", run_altq_drr(), 1.26},
      {"Plugin architecture + DRR plugin", run_plugin_drr(), 1.26},
  };

  std::printf("%-38s %12s %10s %10s %12s %12s\n", "kernel", "ns/packet",
              "delta ns", "relative", "paper rel.", "pkts/sec");
  for (const auto& r : rows) {
    std::printf("%-38s %12.0f %10.0f %9.2fx %11.2fx %12.0f\n", r.name, r.ns,
                r.ns - base, r.ns / base, r.paper_rel, 1e9 / r.ns);
  }
  rp::bench::BenchJson("t3_overall")
      .num("unmodified_ns", rows[0].ns)
      .num("plugin_3gates_ns", rows[1].ns)
      .num("altq_drr_ns", rows[2].ns)
      .num("plugin_drr_ns", rows[3].ns)
      .num("plugin_overhead_rel", rows[1].ns / base)
      .emit();
  std::printf(
      "\nPaper: 6460 / 6970 / 8160 / 8110 cycles per packet on a P6/233\n"
      "(27.7 / 29.9 / 35.0 / 34.8 us); the plugin architecture added ~500\n"
      "cycles (~8%%) and plugin-DRR matched monolithic ALTQ-DRR.\n"
      "Note: our user-space best-effort baseline omits the fixed kernel\n"
      "costs (interrupts, mbuf management, device programming) of the 1998\n"
      "path, so *relative* overheads read higher here; compare the absolute\n"
      "added cost per packet (delta ns) and the row3 vs row4 equivalence.\n");
  return 0;
}

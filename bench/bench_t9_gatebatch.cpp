// PR 6 headline: group-dispatched gate batching vs the per-packet gate loop
// on the Table-3 three-gate workload (3 UDP flows, 8 KB datagrams, 16
// filters per gate, gates ipopt -> ipsec -> stats), driven through
// process_burst in bursts of Aiu::kMaxBurst.
//
//   row 1: burst-32 path, per-packet gate dispatch  (batch_gates=false —
//          the PR 5 datapath: one-pass AIU resolve, then per-packet gates)
//   row 2: grouped dispatch, runtime gate list       (batch_gates=true,
//          gate order stats/ipopt/ipsec so the fused chain does not match)
//   row 3: grouped dispatch, compile-time fused 3-gate chain
//          (gate order ipopt/ipsec/ipsec-stats matches FusedGateList3)
//
// The plugins are batch-native no-ops (handle_burst overridden), so the
// rows isolate dispatch cost: per-packet rows pay gate_lookup + supervisor
// guard + virtual call per packet per gate; grouped rows pay them once per
// (gate, instance) group, and the shared tail memoizes the route lookup and
// interface resolve across each chunk. A quiet resilience supervisor is
// attached in every row — the deployed configuration (Router/Shard always
// attach one), and the one whose per-packet guard the group dispatch
// amortizes. The timed region is ingress -> output queue (process_burst
// only); the drain runs between reps, untimed, so 8 KB buffer frees don't
// dilute the per-packet figure. The acceptance target is speedup >= 1.5x
// for the fused row over row 1.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "core/ip_core.hpp"
#include "plugin/pcu.hpp"
#include "resilience/resilience.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kFlows = 3;
constexpr int kPacketsPerFlow = 100;
const int kReps = rp::bench::scaled(2000, 2);
constexpr std::size_t kPayload = 8192;

// Batch-native empty plugin: handle_burst leaves every verdict at cont, so
// a group costs one virtual call regardless of size. handle_packet is the
// per-packet row's cost (and the shim's).
class EmptyBurstInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
  void handle_burst(plugin::PacketRun&) override {}
};
class EmptyBurstPlugin final : public plugin::Plugin {
 public:
  EmptyBurstPlugin(std::string name, plugin::PluginType t)
      : Plugin(std::move(name), t) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyBurstInstance>();
  }
};

std::vector<tgen::FlowEndpoints> flows() {
  std::vector<tgen::FlowEndpoints> out;
  for (int f = 0; f < kFlows; ++f) {
    tgen::FlowEndpoints ep;
    ep.src = netbase::IpAddr(
        netbase::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(f + 1)));
    ep.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    ep.proto = 17;
    ep.sport = static_cast<std::uint16_t>(5000 + f);
    ep.dport = 9000;
    out.push_back(ep);
  }
  return out;
}

// The paper's 16 filters per gate: 13 padding filters that never match plus
// a catch-all binding the three flows to the gate's instance.
void install_filters(aiu::Aiu& aiu, plugin::PluginType gate,
                     plugin::PluginInstance* inst) {
  for (int i = 0; i < 13; ++i) {
    aiu::Filter f;
    f.src = *netbase::IpPrefix::parse("99.77." + std::to_string(i) + ".0/24");
    f.proto = aiu::ProtoSpec::exact(6);
    aiu.create_filter(gate, f, inst);
  }
  aiu.create_filter(gate, *aiu::Filter::parse("10.0.0.0/8 * udp * * *"),
                    inst);
}

struct Result {
  double ns;
  std::uint64_t groups;
  std::uint64_t fused;
};

// Builds a router with the given gate order, drives the workload through
// process_burst in bursts of kMaxBurst, returns avg ns/packet.
Result run(bool batch_gates, std::vector<plugin::PluginType> gates) {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  aiu::Aiu aiu(pcu, clock);
  route::RoutingTable routes("bsl");
  netdev::InterfaceTable ifs;
  ifs.add("if0");
  ifs.add("if1");
  routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

  core::CoreConfig cfg;
  cfg.input_gates = std::move(gates);
  cfg.batch_gates = batch_gates;
  core::IpCore core(aiu, routes, ifs, clock, cfg);

  // Quiet supervisor, as in production: no injection, no budgets, breakers
  // closed — the per-packet path pays one guard per packet per gate, the
  // grouped path one per group.
  resilience::Supervisor sup;
  sup.set_aiu(&aiu);
  sup.set_clock(&clock);
  core.set_resilience(&sup);

  const char* names[] = {"g1", "g2", "g3"};
  for (std::size_t g = 0; g < cfg.input_gates.size(); ++g) {
    pcu.register_plugin(
        std::make_unique<EmptyBurstPlugin>(names[g], cfg.input_gates[g]));
    plugin::InstanceId id = plugin::kNoInstance;
    pcu.find(names[g])->create_instance({}, id);
    install_filters(aiu, cfg.input_gates[g], pcu.find(names[g])->instance(id));
  }

  const auto eps = flows();
  std::vector<pkt::PacketPtr> batch;
  batch.reserve(kFlows * kPacketsPerFlow);
  auto make_batch = [&] {
    batch.clear();
    for (int i = 0; i < kPacketsPerFlow; ++i)
      for (const auto& ep : eps) batch.push_back(tgen::packet_for(ep, kPayload));
  };

  auto ingress = [&] {
    for (std::size_t off = 0; off < batch.size(); off += aiu::Aiu::kMaxBurst) {
      const std::size_t n =
          std::min(aiu::Aiu::kMaxBurst, batch.size() - off);
      core.process_burst({batch.data() + off, n});
    }
  };
  auto drain = [&] {
    pkt::PacketPtr out;
    while ((out = core.next_for_tx(1, 0))) out.reset();
  };

  make_batch();
  ingress();  // warmup: populate the flow cache
  drain();

  // Best-rep figure: each rep pushes 300 packets (~10 burst chunks); the
  // minimum over reps is the machine's clean-run cost, insulated from
  // scheduler/VM noise that a mean would average in.
  double best_ns = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    make_batch();  // packet construction excluded from the timing
    auto tp0 = Clock::now();
    ingress();  // timed region: ingress -> output queue
    auto tp1 = Clock::now();
    drain();  // untimed: frees the 8 KB buffers between reps
    const double ns =
        std::chrono::duration<double, std::nano>(tp1 - tp0).count() /
        (kFlows * kPacketsPerFlow);
    if (ns < best_ns) best_ns = ns;
  }
  const auto& cc = core.counters();
  return {best_ns, cc.gate_groups, cc.fused_bursts};
}

}  // namespace

int main() {
  using plugin::PluginType;
  std::printf(
      "Table 9 — Gate batching on the Table-3 3-gate workload\n"
      "(3 UDP flows, 8 KB datagrams, 16 filters/gate, burst %zu,\n"
      " %d pkts/flow x %d reps)\n\n",
      aiu::Aiu::kMaxBurst, kPacketsPerFlow, kReps);

  // Rows 2/3 differ only in gate order: ipopt/ipsec/stats matches the
  // compile-time fused chain, any other order takes the runtime gate list.
  // With empty plugins the per-gate work is order-independent.
  Result base = run(false, {PluginType::ipopt, PluginType::ipsec,
                            PluginType::stats});
  Result grouped = run(true, {PluginType::stats, PluginType::ipopt,
                              PluginType::ipsec});
  Result fused = run(true, {PluginType::ipopt, PluginType::ipsec,
                            PluginType::stats});

  struct Row {
    const char* name;
    const Result& r;
  };
  Row rows[] = {
      {"burst-32, per-packet gate dispatch", base},
      {"grouped dispatch (runtime gate list)", grouped},
      {"grouped + fused 3-gate chain", fused},
  };
  std::printf("%-40s %12s %10s %12s %12s\n", "configuration", "ns/packet",
              "speedup", "gate groups", "fused bursts");
  for (const auto& row : rows)
    std::printf("%-40s %12.1f %9.2fx %12llu %12llu\n", row.name, row.r.ns,
                base.ns / row.r.ns,
                static_cast<unsigned long long>(row.r.groups),
                static_cast<unsigned long long>(row.r.fused));

  rp::bench::BenchJson("t9_gatebatch")
      .num("perpkt_ns", base.ns)
      .num("grouped_ns", grouped.ns)
      .num("fused_ns", fused.ns)
      .num("grouped_speedup", base.ns / grouped.ns)
      .num("fused_speedup", base.ns / fused.ns)
      .emit();
  return 0;
}

// Figure C (§3.2): effectiveness of the flow cache.
//
// "The filter lookup ... happens only for the first packet of a burst.
// Subsequent packets get this information from a fast flow cache." We sweep
// the packets-per-flow (burst length) and the number of active gates, and
// report the average per-packet classification cost: it decays toward the
// cached cost as bursts lengthen, and only the *first* packet pays the
// n-gate filter lookups.
#include <chrono>
#include <cstdio>
#include <vector>

#include "aiu/aiu.hpp"
#include "bench_json.hpp"
#include "netbase/memaccess.hpp"
#include "plugin/pcu.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

class EmptyInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};
class EmptyPlugin final : public plugin::Plugin {
 public:
  EmptyPlugin(std::string name, plugin::PluginType t)
      : Plugin(std::move(name), t) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyInstance>();
  }
};

constexpr plugin::PluginType kGateTypes[] = {
    plugin::PluginType::ipopt,   plugin::PluginType::ipsec,
    plugin::PluginType::firewall, plugin::PluginType::stats,
    plugin::PluginType::congestion, plugin::PluginType::sched,
};

struct Result {
  double avg_accesses;
  double first_pkt_accesses;
  double cached_accesses;
};

Result run(int gates, std::size_t burst, std::size_t n_filters) {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  aiu::Aiu aiu(pcu, clock);

  tgen::FilterSetSpec spec;
  spec.count = n_filters;
  spec.seed = 99;
  spec.p_wild_src = 0;
  spec.p_wild_dst = 0;
  auto filters = tgen::random_filters(spec);

  for (int g = 0; g < gates; ++g) {
    auto name = "g" + std::to_string(g);
    pcu.register_plugin(std::make_unique<EmptyPlugin>(name, kGateTypes[g]));
    plugin::InstanceId id = plugin::kNoInstance;
    pcu.find(name)->create_instance({}, id);
    auto* inst = pcu.find(name)->instance(id);
    for (const auto& f : filters) aiu.create_filter(kGateTypes[g], f, inst);
    aiu.filter_table(kGateTypes[g])->prepare();
  }

  netbase::Rng rng(7);
  const int kFlowsMeasured = rp::bench::scaled(200, 10);
  std::uint64_t total = 0, first = 0, cached = 0;
  std::uint64_t first_n = 0, cached_n = 0;
  for (int fl = 0; fl < kFlowsMeasured; ++fl) {
    auto ep = tgen::random_flow(rng);
    for (std::size_t i = 0; i < burst; ++i) {
      auto p = tgen::packet_for(ep, 64);
      netbase::MemAccess::reset();
      // Every gate consults the AIU, as the core does.
      for (int g = 0; g < gates; ++g) aiu.gate_lookup(*p, kGateTypes[g]);
      std::uint64_t a = netbase::MemAccess::total();
      total += a;
      if (i == 0) {
        first += a;
        ++first_n;
      } else {
        cached += a;
        ++cached_n;
      }
    }
  }
  return {static_cast<double>(total) / (kFlowsMeasured * burst),
          static_cast<double>(first) / first_n,
          cached_n ? static_cast<double>(cached) / cached_n : 0.0};
}

}  // namespace

int main() {
  std::printf(
      "Figure C — Flow-cache effectiveness (memory accesses per packet)\n"
      "1000 installed filters per gate; first packet pays n filter-table\n"
      "lookups, subsequent packets hit the flow cache / FIX.\n\n");

  std::printf("-- average accesses/packet vs burst length (gates=4) --\n");
  std::printf("%8s %14s %14s %14s\n", "burst", "avg", "first pkt", "cached");
  for (std::size_t burst : {1UL, 2UL, 4UL, 8UL, 16UL, 64UL, 256UL}) {
    Result r = run(4, burst, 1000);
    std::printf("%8zu %14.1f %14.1f %14.1f\n", burst, r.avg_accesses,
                r.first_pkt_accesses, r.cached_accesses);
  }

  std::printf(
      "\n-- first-packet vs cached cost as gates increase (burst=16) --\n");
  std::printf("%8s %14s %14s %14s\n", "gates", "avg", "first pkt", "cached");
  for (int gates = 1; gates <= 6; ++gates) {
    Result r = run(gates, 16, 1000);
    std::printf("%8d %14.1f %14.1f %14.1f\n", gates, r.avg_accesses,
                r.first_pkt_accesses, r.cached_accesses);
    if (gates == 4) {
      rp::bench::BenchJson("fc_cache_locality")
          .num("gates", 4)
          .num("burst", 16)
          .num("avg_accesses", r.avg_accesses)
          .num("first_pkt_accesses", r.first_pkt_accesses)
          .num("cached_accesses", r.cached_accesses)
          .emit();
    }
  }

  std::printf(
      "\nExpected shape: avg decays toward the cached cost with burst\n"
      "length; first-packet cost grows with the gate count while cached\n"
      "cost stays flat (the architecture is 'scalable to a very large\n"
      "number of gates').\n");
  return 0;
}

// Figure F (§5.1.1/§7.1): BMP plugin comparison — PATRICIA (the paper's
// "slower but freely available" plugin) vs binary search on prefix lengths
// (the patented fast plugin) vs controlled prefix expansion (the cited
// state of the art). google-benchmark over database size and family.
#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "bench_json.hpp"
#include "bmp/lpm.hpp"
#include "netbase/memaccess.hpp"
#include "tgen/workload.hpp"

using namespace rp;

namespace {

struct Db {
  std::unique_ptr<bmp::LpmEngine> engine;
  std::vector<netbase::U128> probes;
};

Db build(const char* engine, unsigned width, std::size_t n) {
  Db db;
  db.engine = bmp::make_lpm_engine(engine, width);
  auto ver = width == 32 ? netbase::IpVersion::v4 : netbase::IpVersion::v6;
  auto prefixes = tgen::random_prefixes(n, ver, n + width);
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    db.engine->insert(prefixes[i].addr.key(), prefixes[i].len,
                      static_cast<bmp::LpmValue>(i));
  netbase::Rng rng(5);
  for (int i = 0; i < 4096; ++i) {
    if (i % 2) {
      db.probes.push_back(netbase::U128{rng.next(), rng.next()});
    } else {
      // Specialize an installed prefix so half the probes hit.
      const auto& p = prefixes[rng.below(prefixes.size())];
      auto mask = netbase::U128::prefix_mask(p.len);
      db.probes.push_back((p.addr.key() & mask) |
                          (netbase::U128{rng.next(), rng.next()} & ~mask));
    }
  }
  bmp::LpmMatch m;
  db.engine->lookup(db.probes[0], m);  // trigger lazy builds
  return db;
}

void bm_engine(benchmark::State& state, const char* engine, unsigned width) {
  Db db = build(engine, width, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  bmp::LpmMatch m;
  netbase::MemAccess::reset();
  std::uint64_t lookups = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.engine->lookup(db.probes[i], m));
    if (++i == db.probes.size()) i = 0;
    ++lookups;
  }
  state.counters["mem_accesses"] =
      static_cast<double>(netbase::MemAccess::total()) /
      static_cast<double>(lookups);
}

}  // namespace

BENCHMARK_CAPTURE(bm_engine, patricia_v4, "patricia", 32)
    ->RangeMultiplier(8)
    ->Range(1024, 65536);
BENCHMARK_CAPTURE(bm_engine, bsl_v4, "bsl", 32)
    ->RangeMultiplier(8)
    ->Range(1024, 65536);
BENCHMARK_CAPTURE(bm_engine, cpe_v4, "cpe", 32)
    ->RangeMultiplier(8)
    ->Range(1024, 65536);
BENCHMARK_CAPTURE(bm_engine, patricia_v6, "patricia", 128)
    ->RangeMultiplier(8)
    ->Range(1024, 65536);
BENCHMARK_CAPTURE(bm_engine, bsl_v6, "bsl", 128)
    ->RangeMultiplier(8)
    ->Range(1024, 65536);
BENCHMARK_CAPTURE(bm_engine, cpe_v6, "cpe", 128)
    ->RangeMultiplier(8)
    ->Range(1024, 65536);

namespace {

// Headline numbers: ns/lookup per engine at 64 Ki IPv4 prefixes.
void emit_json() {
  using Clock = std::chrono::steady_clock;
  const std::size_t kLookups = rp::bench::scaled<std::size_t>(1 << 20, 1 << 12);
  rp::bench::BenchJson json("ff_bmp");
  json.num("prefixes", 65536);
  for (const char* engine : {"patricia", "bsl", "cpe"}) {
    Db db = build(engine, 32, 65536);
    bmp::LpmMatch m;
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < kLookups; ++i)
      benchmark::DoNotOptimize(db.engine->lookup(db.probes[i % db.probes.size()], m));
    auto t1 = Clock::now();
    json.num(std::string(engine) + "_v4_ns",
             std::chrono::duration<double, std::nano>(t1 - t0).count() /
                 static_cast<double>(kLookups));
  }
  json.emit();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The google-benchmark sweep sizes itself adaptively and ignores
  // RP_BENCH_SMOKE; in smoke mode only the headline emit_json pass runs.
  if (!rp::bench::smoke_mode()) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_json();
  return 0;
}

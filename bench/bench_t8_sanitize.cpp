// T8 (PR 5): cost of the always-on ingress sanitization gate on clean
// traffic.
//
// Same Table-3-style workload as T4/T6 (UDP flows, 16 filters, 3 empty-plugin
// gates, trains of 4, bursts of 32), measured with the sanitizer on vs off.
// Clean traffic is the worst case for the gate: every check runs to
// completion and nothing is dropped, so the full per-packet cost lands on
// packets that would have been forwarded anyway.
//
// The contract (docs/wire_hardening.md): sanitize-on must cost <= 2% over
// sanitize-off on this workload. `overhead_rel` in the BENCH_JSON line is
// the number the acceptance criterion reads.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "core/ip_core.hpp"
#include "plugin/pcu.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

const std::size_t kFlows = rp::bench::scaled<std::size_t>(1 << 18, 1 << 10);
constexpr std::size_t kTrainLen = 4;
constexpr std::size_t kBatch = 8192;
const int kReps = rp::bench::scaled(48, 1);
constexpr std::size_t kPayload = 512;
constexpr std::size_t kBurst = 32;

class EmptyInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};
class EmptyPlugin final : public plugin::Plugin {
 public:
  EmptyPlugin(std::string name, plugin::PluginType t)
      : Plugin(std::move(name), t) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyInstance>();
  }
};

tgen::FlowEndpoints endpoints(std::size_t f) {
  tgen::FlowEndpoints ep;
  ep.src = netbase::IpAddr(netbase::Ipv4Addr(
      10, static_cast<std::uint8_t>(f >> 16), static_cast<std::uint8_t>(f >> 8),
      static_cast<std::uint8_t>(f)));
  ep.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  ep.proto = 17;
  ep.sport = static_cast<std::uint16_t>(1024 + (f % 60000));
  ep.dport = 9000;
  return ep;
}

void install_filters(aiu::Aiu& aiu, plugin::PluginType gate,
                     plugin::PluginInstance* inst) {
  for (int i = 0; i < 13; ++i) {
    aiu::Filter f;
    f.src = *netbase::IpPrefix::parse("99.77." + std::to_string(i) + ".0/24");
    f.proto = aiu::ProtoSpec::exact(6);
    aiu.create_filter(gate, f, inst);
  }
  aiu::Filter all = *aiu::Filter::parse("10.0.0.0/8 * udp * * *");
  aiu.create_filter(gate, all, inst);
}

struct Bench {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  std::unique_ptr<aiu::Aiu> aiu;
  route::RoutingTable routes{"bsl"};
  netdev::InterfaceTable ifs;
  std::unique_ptr<core::IpCore> core;

  Bench() {
    aiu::Aiu::Options aopt;
    aopt.initial_flows = kFlows;
    aopt.flow_buckets = kFlows * 2;
    aiu = std::make_unique<aiu::Aiu>(pcu, clock, aopt);
    ifs.add("if0");
    ifs.add("if1");
    routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

    core::CoreConfig cfg;
    cfg.input_gates = {plugin::PluginType::ipopt, plugin::PluginType::ipsec,
                       plugin::PluginType::stats};
    cfg.port_fifo_limit = kBatch + 64;
    core = std::make_unique<core::IpCore>(*aiu, routes, ifs, clock, cfg);

    const plugin::PluginType gates[3] = {plugin::PluginType::ipopt,
                                         plugin::PluginType::ipsec,
                                         plugin::PluginType::stats};
    const char* names[3] = {"e1", "e2", "e3"};
    for (int g = 0; g < 3; ++g) {
      pcu.register_plugin(std::make_unique<EmptyPlugin>(names[g], gates[g]));
      plugin::InstanceId id = plugin::kNoInstance;
      pcu.find(names[g])->create_instance({}, id);
      install_filters(*aiu, gates[g], pcu.find(names[g])->instance(id));
    }
  }
};

void make_batch(std::vector<pkt::PacketPtr>& batch, std::uint64_t seed) {
  netbase::Rng rng(seed);
  batch.clear();
  while (batch.size() < kBatch) {
    const auto ep = endpoints(rng.below(kFlows));
    for (std::size_t i = 0; i < kTrainLen && batch.size() < kBatch; ++i)
      batch.push_back(tgen::packet_for(ep, kPayload));
  }
}

void warmup(Bench& b) {
  for (std::size_t f = 0; f < kFlows; ++f)
    b.core->process(tgen::packet_for(endpoints(f), kPayload));
  while (b.core->next_for_tx(1, 0)) {
  }
}

// One pass over the batch, toggling cfg.sanitize every burst: even bursts
// run one configuration, odd bursts the other, `flip` swapping the roles so
// neither side systematically gets the first (coldest) burst. Both sides
// therefore ride the identical cache/frequency warm-up curve microseconds
// apart (see bench_t6 for why whole-pass timing measures position, not
// configuration, on this machine). The switch itself is one bool store.
//
// Each burst's ns/packet is recorded individually so the median discards
// preemption outliers instead of letting them inflate one side's sum.
void timed_alternating(Bench& b, std::vector<pkt::PacketPtr>& batch,
                       bool flip, std::vector<double>& off,
                       std::vector<double>& on) {
  bool sanitize = flip;
  for (std::size_t at = 0; at < batch.size(); at += kBurst) {
    const std::size_t len = std::min(kBurst, batch.size() - at);
    b.core->config().sanitize = sanitize;
    const auto t0 = Clock::now();
    b.core->process_burst({batch.data() + at, len});
    const auto t1 = Clock::now();
    (sanitize ? on : off)
        .push_back(std::chrono::duration<double, std::nano>(t1 - t0).count() /
                   static_cast<double>(len));
    sanitize = !sanitize;
  }
  pkt::PacketPtr out;
  while ((out = b.core->next_for_tx(1, 0))) out.reset();
}

double median(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main() {
  std::printf(
      "T8 — Ingress sanitization overhead on the clean-traffic burst path\n"
      "(Table-3 style: UDP, 16 filters, 3 empty gates; %zu flows, trains of "
      "%zu,\n bursts of %zu, %zu-packet reps x %d)\n\n",
      kFlows, kTrainLen, kBurst, kBatch, kReps);

  rp::bench::BenchJson json("t8_sanitize");
  json.num("flows", static_cast<double>(kFlows));
  json.num("burst", static_cast<double>(kBurst));

  Bench bench;
  warmup(bench);

  std::vector<pkt::PacketPtr> batch;
  batch.reserve(kBatch);
  std::vector<double> off_ns_all, on_ns_all;
  for (int rep = 0; rep < kReps; ++rep) {
    make_batch(batch, 1000 + static_cast<std::uint64_t>(rep));
    timed_alternating(bench, batch, (rep & 1) != 0, off_ns_all, on_ns_all);
  }
  bench.core->config().sanitize = true;  // leave the gate on

  const double off_ns = median(off_ns_all);
  const double on_ns = median(on_ns_all);
  const double over = on_ns / off_ns - 1.0;
  std::printf("%10s %12s %10s\n", "sanitize", "ns/packet", "overhead");
  std::printf("%10s %12.1f %9.2f%%\n", "off", off_ns, 0.0);
  std::printf("%10s %12.1f %9.2f%%\n", "on", on_ns, 100.0 * over);
  json.num("off_ns", off_ns);
  json.num("on_ns", on_ns);
  json.num("overhead_rel", over);
  json.emit();

  // Prove the "on" bursts really ran the gate: clean traffic must not lose
  // a single packet to it.
  const auto& cc = bench.core->counters();
  std::printf("\nsanitize drops on clean traffic: %llu (must be 0), "
              "trimmed: %llu\n",
              static_cast<unsigned long long>(cc.total_sanitize_drops()),
              static_cast<unsigned long long>(cc.sanitize_trimmed));

  std::printf(
      "\nThe gate re-reads header bytes the flow-key extractor is about to\n"
      "load anyway, so on clean traffic its cost is arithmetic on\n"
      "already-hot cache lines. The acceptance budget is overhead_rel\n"
      "<= 0.02 (docs/wire_hardening.md).\n");
  return 0;
}

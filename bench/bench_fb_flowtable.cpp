// Figure B (§7.1/§8): flow-table (cached path) lookup performance.
//
// The paper: a cached IPv6 flow entry is found in 1.3 us on a P6/233, the
// flow hash costs 17 Pentium cycles, and the default table has 32768
// buckets. We measure the cached lookup across concurrent-flow counts
// (load factors) and report ns/lookup plus counted memory accesses (bucket
// probe + chain links), using google-benchmark.
#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "aiu/flow_table.hpp"
#include "bench_json.hpp"
#include "netbase/memaccess.hpp"
#include "tgen/workload.hpp"

using namespace rp;

namespace {

void BM_FlowTableHit(benchmark::State& state) {
  const std::size_t flows = static_cast<std::size_t>(state.range(0));
  aiu::FlowTable table(32768, 1024, 1 << 21);
  netbase::Rng rng(flows);
  std::vector<pkt::FlowKey> keys;
  keys.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    keys.push_back(tgen::random_key(rng));
    table.insert(keys.back(), 0);
  }
  std::size_t i = 0;
  netbase::MemAccess::reset();
  std::uint64_t lookups = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(keys[i], 1));
    if (++i == keys.size()) i = 0;
    ++lookups;
  }
  state.counters["mem_accesses_per_lookup"] =
      static_cast<double>(netbase::MemAccess::total()) /
      static_cast<double>(lookups);
  state.counters["load_factor"] =
      static_cast<double>(flows) / static_cast<double>(table.bucket_count());
}
BENCHMARK(BM_FlowTableHit)->RangeMultiplier(8)->Range(64, 1 << 18);

void BM_FlowTableMiss(benchmark::State& state) {
  aiu::FlowTable table(32768, 1024, 1 << 20);
  netbase::Rng rng(1);
  for (int i = 0; i < 10000; ++i) table.insert(tgen::random_key(rng), 0);
  netbase::Rng probe(2);
  for (auto _ : state) {
    auto k = tgen::random_key(probe);
    benchmark::DoNotOptimize(table.lookup(k, 1));
  }
}
BENCHMARK(BM_FlowTableMiss);

void BM_FlowTableHitPrecomputedHash(benchmark::State& state) {
  // The burst path's two-stage lookup: hash computed once up front (and
  // used for prefetch), probe with the precomputed value.
  const std::size_t flows = static_cast<std::size_t>(state.range(0));
  aiu::FlowTable table(32768, 1024, 1 << 21);
  netbase::Rng rng(flows);
  std::vector<pkt::FlowKey> keys;
  std::vector<std::uint64_t> hashes;
  keys.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    keys.push_back(tgen::random_key(rng));
    hashes.push_back(keys.back().hash());
    table.insert(keys.back(), hashes.back(), 0);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    table.prefetch(hashes[i]);
    benchmark::DoNotOptimize(table.lookup(keys[i], hashes[i], 1));
    if (++i == keys.size()) i = 0;
  }
}
BENCHMARK(BM_FlowTableHitPrecomputedHash)->RangeMultiplier(8)->Range(64, 1 << 18);

void BM_FlowHashOnly(benchmark::State& state) {
  // The paper's 17-cycle flow hash, in isolation.
  netbase::Rng rng(3);
  std::vector<pkt::FlowKey> keys;
  for (int i = 0; i < 1024; ++i) keys.push_back(tgen::random_key(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys[i].hash());
    if (++i == keys.size()) i = 0;
  }
}
BENCHMARK(BM_FlowHashOnly);

void BM_FlowTableInsertRecycle(benchmark::State& state) {
  // Steady-state insert behaviour at the record cap (LRU recycling).
  aiu::FlowTable table(32768, 1024, 4096);
  netbase::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.insert(tgen::random_key(rng), 1));
  }
  state.counters["recycled"] =
      static_cast<double>(table.stats().recycled);
}
BENCHMARK(BM_FlowTableInsertRecycle);

// Headline numbers for the machine-readable line: cached-hit cost with and
// without a precomputed hash at 64 Ki concurrent flows.
void emit_json() {
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kFlows = 1 << 16;
  const std::size_t kLookups = rp::bench::scaled<std::size_t>(1 << 20, 1 << 12);
  aiu::FlowTable table(1 << 17, kFlows, 1 << 21);
  netbase::Rng rng(kFlows);
  std::vector<pkt::FlowKey> keys;
  std::vector<std::uint64_t> hashes;
  for (std::size_t i = 0; i < kFlows; ++i) {
    keys.push_back(tgen::random_key(rng));
    hashes.push_back(keys.back().hash());
    table.insert(keys.back(), hashes.back(), 0);
  }
  auto t0 = Clock::now();
  for (std::size_t i = 0; i < kLookups; ++i)
    benchmark::DoNotOptimize(table.lookup(keys[i % kFlows], 1));
  auto t1 = Clock::now();
  for (std::size_t i = 0; i < kLookups; ++i) {
    table.prefetch(hashes[(i + 8) % kFlows]);  // burst-style lookahead
    benchmark::DoNotOptimize(
        table.lookup(keys[i % kFlows], hashes[i % kFlows], 1));
  }
  auto t2 = Clock::now();
  const double n = static_cast<double>(kLookups);
  rp::bench::BenchJson("fb_flowtable")
      .num("flows", static_cast<double>(kFlows))
      .num("hit_ns",
           std::chrono::duration<double, std::nano>(t1 - t0).count() / n)
      .num("hit_prehash_prefetch_ns",
           std::chrono::duration<double, std::nano>(t2 - t1).count() / n)
      .emit();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // See bench_ff: the adaptive sweep is skipped in RP_BENCH_SMOKE mode.
  if (!rp::bench::smoke_mode()) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_json();
  return 0;
}

// T5 (PR 2): cost of the telemetry subsystem on the burst datapath.
//
// Same Table-3-style workload as T4 (UDP flows, 16 filters, 3 empty-plugin
// gates, 256 Ki-flow steady state, trains of 4, bursts of 32), measured in
// three telemetry configurations:
//
//   off      no Telemetry attached — the pre-telemetry datapath
//   default  sampling 1-in-128 (the shipped default)
//   full     sampling 1-in-1 — every packet traced and timed per gate
//
// The contract (docs/telemetry.md): at the default sampling rate the
// overhead must stay within 3% of `off`, because unsampled packets pay one
// counter decrement and nothing else. `overhead_rel_default` in the
// BENCH_JSON line is the number the acceptance criterion reads.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "core/ip_core.hpp"
#include "plugin/pcu.hpp"
#include "telemetry/telemetry.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

const std::size_t kFlows = rp::bench::scaled<std::size_t>(1 << 18, 1 << 10);
constexpr std::size_t kTrainLen = 4;
constexpr std::size_t kBatch = 8192;
const int kReps = rp::bench::scaled(40, 1);
constexpr std::size_t kPayload = 512;
constexpr std::size_t kBurst = 32;

struct TelemetryConfig {
  const char* name;
  bool attached;
  std::uint32_t sample_every;
};
const TelemetryConfig kConfigs[] = {
    {"off", false, 0},
    {"default", true, 128},
    {"full", true, 1},
};

class EmptyInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};
class EmptyPlugin final : public plugin::Plugin {
 public:
  EmptyPlugin(std::string name, plugin::PluginType t)
      : Plugin(std::move(name), t) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyInstance>();
  }
};

tgen::FlowEndpoints endpoints(std::size_t f) {
  tgen::FlowEndpoints ep;
  ep.src = netbase::IpAddr(netbase::Ipv4Addr(
      10, static_cast<std::uint8_t>(f >> 16), static_cast<std::uint8_t>(f >> 8),
      static_cast<std::uint8_t>(f)));
  ep.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  ep.proto = 17;
  ep.sport = static_cast<std::uint16_t>(1024 + (f % 60000));
  ep.dport = 9000;
  return ep;
}

void install_filters(aiu::Aiu& aiu, plugin::PluginType gate,
                     plugin::PluginInstance* inst) {
  for (int i = 0; i < 13; ++i) {
    aiu::Filter f;
    f.src = *netbase::IpPrefix::parse("99.77." + std::to_string(i) + ".0/24");
    f.proto = aiu::ProtoSpec::exact(6);
    aiu.create_filter(gate, f, inst);
  }
  aiu::Filter all = *aiu::Filter::parse("10.0.0.0/8 * udp * * *");
  aiu.create_filter(gate, all, inst);
}

struct Bench {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  std::unique_ptr<aiu::Aiu> aiu;
  route::RoutingTable routes{"bsl"};
  netdev::InterfaceTable ifs;
  std::unique_ptr<core::IpCore> core;
  std::unique_ptr<telemetry::Telemetry> tel;

  explicit Bench(const TelemetryConfig& tc) {
    aiu::Aiu::Options aopt;
    aopt.initial_flows = kFlows;
    aopt.flow_buckets = kFlows * 2;
    aiu = std::make_unique<aiu::Aiu>(pcu, clock, aopt);
    ifs.add("if0");
    ifs.add("if1");
    routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

    core::CoreConfig cfg;
    cfg.input_gates = {plugin::PluginType::ipopt, plugin::PluginType::ipsec,
                       plugin::PluginType::stats};
    cfg.port_fifo_limit = kBatch + 64;
    core = std::make_unique<core::IpCore>(*aiu, routes, ifs, clock, cfg);

    if (tc.attached) {
      telemetry::Telemetry::Options topt;
      topt.sample_every = tc.sample_every;
      tel = std::make_unique<telemetry::Telemetry>(topt);
      core->set_telemetry(tel.get());
    }

    const plugin::PluginType gates[3] = {plugin::PluginType::ipopt,
                                         plugin::PluginType::ipsec,
                                         plugin::PluginType::stats};
    const char* names[3] = {"e1", "e2", "e3"};
    for (int g = 0; g < 3; ++g) {
      pcu.register_plugin(std::make_unique<EmptyPlugin>(names[g], gates[g]));
      plugin::InstanceId id = plugin::kNoInstance;
      pcu.find(names[g])->create_instance({}, id);
      install_filters(*aiu, gates[g], pcu.find(names[g])->instance(id));
    }
  }
};

void make_batch(std::vector<pkt::PacketPtr>& batch, std::uint64_t seed) {
  netbase::Rng rng(seed);
  batch.clear();
  while (batch.size() < kBatch) {
    const auto ep = endpoints(rng.below(kFlows));
    for (std::size_t i = 0; i < kTrainLen && batch.size() < kBatch; ++i)
      batch.push_back(tgen::packet_for(ep, kPayload));
  }
}

void warmup(Bench& b) {
  for (std::size_t f = 0; f < kFlows; ++f)
    b.core->process(tgen::packet_for(endpoints(f), kPayload));
  while (b.core->next_for_tx(1, 0)) {
  }
}

double timed_pass(Bench& b, std::vector<pkt::PacketPtr>& batch) {
  const auto t0 = Clock::now();
  for (std::size_t off = 0; off < batch.size(); off += kBurst) {
    const std::size_t n = std::min(kBurst, batch.size() - off);
    b.core->process_burst({batch.data() + off, n});
  }
  const auto t1 = Clock::now();
  pkt::PacketPtr out;
  while ((out = b.core->next_for_tx(1, 0))) out.reset();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(batch.size());
}

double median(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main() {
  std::printf(
      "T5 — Telemetry overhead on the burst datapath\n"
      "(Table-3 style: UDP, 16 filters, 3 empty gates; %zu flows, trains of "
      "%zu,\n bursts of %zu, %zu-packet reps x %d)\n\n",
      kFlows, kTrainLen, kBurst, kBatch, kReps);
#if !RP_TELEMETRY
  std::printf("built with RP_TELEMETRY=0 — all configs run the stripped "
              "datapath\n\n");
#endif

  rp::bench::BenchJson json("t5_telemetry");
  json.num("flows", static_cast<double>(kFlows));
  json.num("burst", static_cast<double>(kBurst));

  // One router per configuration, warmed to the cached steady state; reps
  // interleave the configurations so machine drift hits all three equally.
  constexpr std::size_t kNConfigs = std::size(kConfigs);
  std::vector<std::unique_ptr<Bench>> benches;
  for (const auto& tc : kConfigs) {
    benches.push_back(std::make_unique<Bench>(tc));
    warmup(*benches.back());
  }

  std::vector<double> samples[kNConfigs];
  std::vector<pkt::PacketPtr> batch;
  batch.reserve(kBatch);
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t c = 0; c < kNConfigs; ++c) {
      make_batch(batch, 1000 + rep);
      samples[c].push_back(timed_pass(*benches[c], batch));
    }
  }

  double off_ns = 0;
  std::printf("%10s %12s %10s\n", "telemetry", "ns/packet", "overhead");
  for (std::size_t c = 0; c < kNConfigs; ++c) {
    const double ns = median(samples[c]);
    if (c == 0) off_ns = ns;
    const double over = off_ns > 0 ? (ns - off_ns) / off_ns : 0.0;
    std::printf("%10s %12.1f %9.2f%%\n", kConfigs[c].name, ns, 100.0 * over);
    json.num(std::string(kConfigs[c].name) + "_ns", ns);
    if (c > 0)
      json.num("overhead_rel_" + std::string(kConfigs[c].name), over);
  }
  json.emit();

  // Show the instrumentation actually ran: the "full" router sampled every
  // packet it processed in the timed reps.
  if (benches.back()->tel) {
    const auto& t = *benches.back()->tel;
    std::printf(
        "\nfull-sampling router: samples=%llu traces=%llu pipeline p50<=%llu "
        "cycles\n",
        static_cast<unsigned long long>(t.samples()),
        static_cast<unsigned long long>(t.traces().captured()),
        static_cast<unsigned long long>(t.pipeline_hist().quantile(0.5)));
  }
  std::printf(
      "\nUnsampled packets pay one counter decrement; rdtsc timing, gate\n"
      "histograms, and trace capture run only for the sampled 1-in-N.\n"
      "The acceptance budget is overhead_rel_default <= 0.03.\n");
  return 0;
}

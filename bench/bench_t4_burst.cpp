// T4 (this repo's addition, PR 1): per-packet cost of the batched datapath
// versus the single-packet path.
//
// The workload is Table-3 style — UDP flows through the plugin architecture
// with three empty-plugin gates and 16 installed filters — but scaled from
// the paper's 3 concurrent flows to 64 Ki so the flow table (the per-flow
// state the AIU touches on every packet) far exceeds the CPU caches, the
// regime the paper's ATM testbed never reached. Packets arrive in short
// per-flow trains (the "flow-like characteristics" §5.2 banks on).
//
// The burst path (IpCore::process_burst) computes all flow hashes for a
// burst up front, prefetches the flow-table buckets and then the chained
// records, and memoizes the last resolved flow so train packets skip the
// probe. Burst size 1 *is* the single-packet path (process() is a burst of
// one), so the comparison isolates exactly the batching win.
//
// Provenance note (PR 6): BENCH_pr5.json recorded burst_4 = 1277 ns vs
// burst_1 = 796 ns — a 1.6x inversion at ~3x the absolute level of every
// other sweep. That was a recording artifact of the PR 5 sweep environment
// (the same sweep's t3 numbers are ~3x PR 4's), not an algorithmic effect.
// Every other sweep (BENCH_pr1..pr4 and fresh runs, e.g. 309.4 / 298.4 /
// 243.4 / 214.9 / 197.8 ns for bursts 1/4/8/16/32) shows the real shape:
// burst_4 runs within a few percent of burst_1 — with train_len = 4 a
// 4-packet burst is a single train, so the resolve pass's hash/prefetch
// setup buys only memo hits the per-packet FIX path nearly matches — and
// the prefetch pipeline wins monotonically from burst 8 up. The reported
// figure is a median over reps with the configs interleaved round-robin,
// which resists transient interference but not interference sustained
// across a whole sweep — compare curves across BENCH_*.json files
// (scripts/bench_compare.py) before reading anything into one recording.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "core/ip_core.hpp"
#include "plugin/pcu.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

const std::size_t kFlows =                // 256 Ki concurrent flows (~80 MB)
    rp::bench::scaled<std::size_t>(1 << 18, 1 << 10);
constexpr std::size_t kTrainLen = 4;      // packets per per-flow train
constexpr std::size_t kBatch = 8192;      // packets built (untimed) per rep
const int kReps = rp::bench::scaled(40, 1);
constexpr std::size_t kPayload = 512;
const std::size_t kBurstSizes[] = {1, 4, 8, 16, 32};

class EmptyInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};
class EmptyPlugin final : public plugin::Plugin {
 public:
  EmptyPlugin(std::string name, plugin::PluginType t)
      : Plugin(std::move(name), t) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyInstance>();
  }
};

tgen::FlowEndpoints endpoints(std::size_t f) {
  tgen::FlowEndpoints ep;
  ep.src = netbase::IpAddr(netbase::Ipv4Addr(
      10, static_cast<std::uint8_t>(f >> 16), static_cast<std::uint8_t>(f >> 8),
      static_cast<std::uint8_t>(f)));
  ep.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  ep.proto = 17;
  ep.sport = static_cast<std::uint16_t>(1024 + (f % 60000));
  ep.dport = 9000;
  return ep;
}

// The paper's 16 filters per gate: 13 that never match plus catch-alls.
void install_filters(aiu::Aiu& aiu, plugin::PluginType gate,
                     plugin::PluginInstance* inst) {
  for (int i = 0; i < 13; ++i) {
    aiu::Filter f;
    f.src = *netbase::IpPrefix::parse("99.77." + std::to_string(i) + ".0/24");
    f.proto = aiu::ProtoSpec::exact(6);
    aiu.create_filter(gate, f, inst);
  }
  aiu::Filter all = *aiu::Filter::parse("10.0.0.0/8 * udp * * *");
  aiu.create_filter(gate, all, inst);
}

struct Bench {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  std::unique_ptr<aiu::Aiu> aiu;
  route::RoutingTable routes{"bsl"};
  netdev::InterfaceTable ifs;
  std::unique_ptr<core::IpCore> core;

  Bench() {
    aiu::Aiu::Options aopt;
    aopt.initial_flows = kFlows;    // steady state, not growth, is measured
    aopt.flow_buckets = kFlows * 2; // short chains even at 256 Ki flows
    aiu = std::make_unique<aiu::Aiu>(pcu, clock, aopt);
    ifs.add("if0");
    ifs.add("if1");
    routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

    core::CoreConfig cfg;
    cfg.input_gates = {plugin::PluginType::ipopt, plugin::PluginType::ipsec,
                       plugin::PluginType::stats};
    cfg.port_fifo_limit = kBatch + 64;  // drain once per rep, no drops
    core = std::make_unique<core::IpCore>(*aiu, routes, ifs, clock, cfg);

    const plugin::PluginType gates[3] = {plugin::PluginType::ipopt,
                                         plugin::PluginType::ipsec,
                                         plugin::PluginType::stats};
    const char* names[3] = {"e1", "e2", "e3"};
    for (int g = 0; g < 3; ++g) {
      pcu.register_plugin(std::make_unique<EmptyPlugin>(names[g], gates[g]));
      plugin::InstanceId id = plugin::kNoInstance;
      pcu.find(names[g])->create_instance({}, id);
      install_filters(*aiu, gates[g], pcu.find(names[g])->instance(id));
    }
  }
};

// Train-structured batch: flows chosen pseudo-randomly, kTrainLen
// consecutive packets each, identical across burst-size configurations.
void make_batch(std::vector<pkt::PacketPtr>& batch, std::uint64_t seed) {
  netbase::Rng rng(seed);
  batch.clear();
  while (batch.size() < kBatch) {
    const auto ep = endpoints(rng.below(kFlows));
    for (std::size_t i = 0; i < kTrainLen && batch.size() < kBatch; ++i)
      batch.push_back(tgen::packet_for(ep, kPayload));
  }
}

void warmup(Bench& b) {
  // Create every flow entry so the timed reps measure the cached steady
  // state (as in Table 3).
  for (std::size_t f = 0; f < kFlows; ++f)
    b.core->process(tgen::packet_for(endpoints(f), kPayload));
  while (b.core->next_for_tx(1, 0)) {
  }
}

// One timed pass of `batch` through `b` at the given burst size; returns
// ns/packet. The output drain (FIFO pop + packet free) is identical
// constant work for every burst size; it stays outside the timing so the
// input path is what's measured.
double timed_pass(Bench& b, std::vector<pkt::PacketPtr>& batch,
                  std::size_t burst) {
  const auto t0 = Clock::now();
  for (std::size_t off = 0; off < batch.size(); off += burst) {
    const std::size_t n = std::min(burst, batch.size() - off);
    b.core->process_burst({batch.data() + off, n});
  }
  const auto t1 = Clock::now();
  pkt::PacketPtr out;
  while ((out = b.core->next_for_tx(1, 0))) out.reset();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(batch.size());
}

double median(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main() {
  std::printf(
      "T4 — Burst datapath vs single-packet path\n"
      "(Table-3 style: UDP, 16 filters, 3 empty gates; %zu flows, trains of "
      "%zu,\n %zu-packet reps x %d)\n\n",
      kFlows, kTrainLen, kBatch, kReps);

  rp::bench::BenchJson json("t4_burst");
  json.num("flows", static_cast<double>(kFlows));
  json.num("train_len", static_cast<double>(kTrainLen));

  // One independent router (own flow table) per burst size, all warmed up
  // front. The timed reps interleave the configurations so slow machine
  // drift (frequency scaling, co-tenants) hits every burst size equally;
  // the median rep discards interference spikes.
  constexpr std::size_t kConfigs = std::size(kBurstSizes);
  std::vector<std::unique_ptr<Bench>> benches;
  for (std::size_t c = 0; c < kConfigs; ++c) {
    benches.push_back(std::make_unique<Bench>());
    warmup(*benches.back());
  }

  std::vector<double> samples[kConfigs];
  std::vector<pkt::PacketPtr> batch;
  batch.reserve(kBatch);
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t c = 0; c < kConfigs; ++c) {
      make_batch(batch, 1000 + rep);  // construction excluded from timing
      samples[c].push_back(timed_pass(*benches[c], batch, kBurstSizes[c]));
    }
  }

  double base = 0;
  double last = 0;
  std::printf("%10s %12s %10s %12s\n", "burst", "ns/packet", "speedup",
              "pkts/sec");
  for (std::size_t c = 0; c < kConfigs; ++c) {
    const double ns = median(samples[c]);
    if (kBurstSizes[c] == 1) base = ns;
    last = ns;
    std::printf("%10zu %12.1f %9.2fx %12.0f\n", kBurstSizes[c], ns, base / ns,
                1e9 / ns);
    json.num("burst_" + std::to_string(kBurstSizes[c]) + "_ns", ns);
  }
  json.num("speedup_32_vs_1", last == 0 ? 0 : base / last);
  json.emit();

  std::printf(
      "\nBurst 1 is the single-packet path (process() is a burst of one).\n"
      "Gains come from hash-once + bucket/record prefetch hiding the DRAM\n"
      "latency of the %zu flow records, and the last-flow memo collapsing\n"
      "train packets to an LRU touch.\n",
      kFlows);
  return 0;
}

// Machine-readable benchmark output. Every bench binary keeps its human
// tables and additionally emits exactly one line of the form
//
//   BENCH_JSON {"bench":"<name>","<metric>":<value>,...}
//
// so scripts (and the repo's perf trajectory, BENCH_*.json) can scrape
// results without parsing prose. Keys are flat; values are numbers or
// strings. Nothing here allocates on the data path — it runs once at exit.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace rp::bench {

// Smoke mode (RP_BENCH_SMOKE=1 in the environment): every bench shrinks its
// repetition counts so the whole suite finishes in seconds. CI runs the
// benches this way (ctest label `bench-smoke`) purely to prove they build,
// run, and emit their BENCH_JSON line — smoke numbers are meaningless.
inline bool smoke_mode() {
  const char* e = std::getenv("RP_BENCH_SMOKE");
  return e && *e && *e != '0';
}

// `scaled(full)` -> `full` normally, a ~1-iteration stand-in under smoke.
template <typename T>
inline T scaled(T full, T smoke = T{1}) {
  return smoke_mode() ? smoke : full;
}

class BenchJson {
 public:
  explicit BenchJson(const std::string& name) {
    line_ = "{\"bench\":\"" + name + "\"";
  }

  BenchJson& num(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    line_ += ",\"" + key + "\":" + buf;
    return *this;
  }

  BenchJson& str(const std::string& key, const std::string& v) {
    line_ += ",\"" + key + "\":\"" + v + "\"";
    return *this;
  }

  // Prints the single line to stdout (flushed, so it survives early exits).
  void emit() {
    std::printf("BENCH_JSON %s}\n", line_.c_str());
    std::fflush(stdout);
  }

 private:
  std::string line_;
};

}  // namespace rp::bench

// T12: million-flow scheduler head-to-head — Eiffel vs DRR vs H-FSC.
//
// Eiffel's claim (NSDI'19, reproduced here as the `eiffel` sched plugin) is
// that a bucketed FFS-hierarchy priority queue keeps per-packet cost flat in
// the number of simultaneously backlogged flows. Measuring that honestly
// needs two controls:
//
//  * Memory regime. A naive 10k-flow baseline fits in LLC while the 1M-flow
//    run streams from DRAM, so any engine "grows" ~2x for reasons that have
//    nothing to do with its data structure. Here every scale draws its flows
//    from the same 1M-flow universe and rotates the backlogged window
//    through it, so per-flow state is DRAM-cold at every scale and the only
//    variable is how many flows sit in the structure at once.
//
//  * H-FSC's configuration. With one aggregate class H-FSC is just a FIFO
//    with curve arithmetic — cheap, and not doing QoS. Its real per-packet
//    cost is the O(#classes) eligible/deadline scan, so we give it the
//    finest class fan-out that is still feasible (256 real-time curve
//    classes; per-flow classes are architecturally out of reach at 1M —
//    class selection and activation are both linear in fan-out — which is
//    the gap Eiffel's rank=deadline mode closes at O(1)). Because each
//    dequeue costs microseconds, the drain phase is sampled (the scan cost
//    is uniform per packet) and per-packet cost is the mean of the
//    per-phase costs.
//
// Each engine/scale pair runs an untimed warmup pass over the whole
// universe (faults memory, creates per-flow state, resolves H-FSC
// classifications into the soft slots), then timed fill/drain repetitions
// at an equal event count per scale.
//
// Acceptance (ISSUE 9): eiffel_1m_ns within 1.25x of eiffel_10k_ns
// (flat in flow count), and >= 2x faster than H-FSC at 1M flows.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "pkt/builder.hpp"
#include "sched/drr.hpp"
#include "sched/eiffel.hpp"
#include "sched/hfsc.hpp"

using namespace rp;

namespace {

double now_ns(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Flow f's source address carries f's low byte in octet 2 (so /16 filters
// split flows across H-FSC's 256 classes at every scale) and the rest in
// octets 3-4; the id is recoverable from the key, so the drain loop can
// return a served packet to its own slot without any side lookup.
pkt::PacketPtr flow_pkt(std::uint32_t f) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(
      10, static_cast<std::uint8_t>(f), static_cast<std::uint8_t>(f >> 8),
      static_cast<std::uint8_t>(f >> 16)));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = static_cast<std::uint16_t>(f & 0xffff);
  s.dport = 80;
  s.payload_len = 64;
  return pkt::build_udp(s);
}

std::uint32_t flow_id(const pkt::Packet& p) {
  const std::uint32_t v = p.key.src.v4().v;
  return ((v >> 16) & 0xff) | (((v >> 8) & 0xff) << 8) | ((v & 0xff) << 16);
}

struct Result {
  double fill_ns{-1};
  double drain_ns{-1};
  double per_event() const { return (fill_ns + drain_ns) / 2.0; }
  bool ok() const { return fill_ns >= 0 && drain_ns >= 0; }
};

// Rotating-window fill/drain for the O(1)-per-flow engines. `universe`
// packets/softs exist; each repetition backlogs a window of `flows` of
// them, serves it dry, then advances the window, so the timed region
// always touches DRAM-cold flow state. One untimed pass over the whole
// universe runs first. `softs` must outlive the engine.
Result measure_rotating(core::OutputScheduler& eng, std::vector<void*>& softs,
                        std::vector<pkt::PacketPtr>& pkts,
                        std::size_t universe, std::size_t flows,
                        std::size_t reps) {
  netbase::SimTime now = 0;
  std::size_t w = 0;
  double fill_ns = 0, drain_ns = 0;
  std::size_t timed = 0;

  const std::size_t warmup = universe / flows;
  for (std::size_t rep = 0; rep < warmup + reps; ++rep) {
    const bool hot = rep >= warmup;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = w; i < w + flows; ++i) {
      now += 100;
      if (!eng.enqueue(std::move(pkts[i]), &softs[i], now)) {
        std::fprintf(stderr, "fill drop at flow %zu\n", i);
        return {};
      }
    }
    if (hot) fill_ns += now_ns(t0);

    t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < flows; ++i) {
      now += 100;
      pkt::PacketPtr p = eng.dequeue(now);
      if (!p) {
        std::fprintf(stderr, "unexpected empty dequeue at pkt %zu\n", i);
        return {};
      }
      pkts[flow_id(*p)] = std::move(p);
    }
    if (hot) {
      drain_ns += now_ns(t0);
      timed += flows;
    }
    w = (w + flows) % universe;
  }
  return {fill_ns / static_cast<double>(timed),
          drain_ns / static_cast<double>(timed)};
}

// H-FSC: one untimed fill seeds the soft slots (paying the per-flow
// classification scan once, as the flow table would) and creates the leaf
// sub-queues; a second, timed fill measures steady enqueue; the drain is a
// `sample`-packet prefix of the backlog (each dequeue pays the same
// O(#classes) scan, so a sample is representative). The engine is
// destroyed still backlogged — H-FSC caches shared Class pointers in the
// soft slots and never clears them, so the remaining packets die with it.
Result measure_hfsc(sched::HfscInstance& eng, std::vector<void*>& softs,
                    std::size_t flows, std::size_t sample) {
  netbase::SimTime now = 0;
  for (std::uint32_t f = 0; f < flows; ++f) {
    now += 100;
    if (!eng.enqueue(flow_pkt(f), &softs[f], now)) {
      std::fprintf(stderr, "hfsc warmup drop at flow %u\n", f);
      return {};
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t f = 0; f < flows; ++f) {
    now += 100;
    if (!eng.enqueue(flow_pkt(f), &softs[f], now)) {
      std::fprintf(stderr, "hfsc fill drop at flow %u\n", f);
      return {};
    }
  }
  const double fill = now_ns(t0) / static_cast<double>(flows);

  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < sample; ++i) {
    now += 100;
    if (!eng.dequeue(now)) {
      std::fprintf(stderr, "hfsc empty dequeue at pkt %zu\n", i);
      return {};
    }
  }
  return {fill, now_ns(t0) / static_cast<double>(sample)};
}

}  // namespace

int main() {
  const std::size_t universe = rp::bench::scaled<std::size_t>(1'000'000, 2'000);
  struct Scale {
    const char* tag;
    std::size_t flows;
  };
  const Scale scales[3] = {
      {"10k", rp::bench::scaled<std::size_t>(10'000, 200)},
      {"100k", rp::bench::scaled<std::size_t>(100'000, 500)},
      {"1m", rp::bench::scaled<std::size_t>(1'000'000, 1'000)},
  };
  // Every scale times the same number of packet events, so small scales
  // average over more window rotations rather than finishing instantly.
  const std::size_t events = rp::bench::scaled<std::size_t>(4'000'000, 4'000);
  const std::size_t hfsc_sample = rp::bench::scaled<std::size_t>(20'000, 200);

  std::printf("%-8s %10s %12s %12s %12s\n", "scale", "flows", "eiffel ns/p",
              "drr ns/p", "hfsc ns/p");

  auto json = rp::bench::BenchJson("t12_eiffel");
  double eiffel_10k = 0, eiffel_1m = 0;

  for (const auto& sc : scales) {
    const std::size_t reps =
        events / (2 * sc.flows) ? events / (2 * sc.flows) : 1;
    Result r_eiffel, r_drr, r_hfsc;

    {
      // Declared before the engine: its destructor nulls every slot.
      std::vector<void*> softs(universe, nullptr);
      std::vector<pkt::PacketPtr> pkts(universe);
      for (std::uint32_t f = 0; f < universe; ++f) pkts[f] = flow_pkt(f);
      sched::EiffelInstance::Config cfg;
      cfg.rank = sched::EiffelInstance::RankFn::vtime;
      sched::EiffelInstance eng(cfg);
      r_eiffel = measure_rotating(eng, softs, pkts, universe, sc.flows, reps);
    }
    {
      std::vector<void*> softs(universe, nullptr);
      std::vector<pkt::PacketPtr> pkts(universe);
      for (std::uint32_t f = 0; f < universe; ++f) pkts[f] = flow_pkt(f);
      sched::DrrInstance::Config cfg;
      sched::DrrInstance eng(cfg);
      r_drr = measure_rotating(eng, softs, pkts, universe, sc.flows, reps);
    }
    {
      std::vector<void*> softs(sc.flows, nullptr);
      sched::HfscInstance::Config cfg;
      cfg.link_rate_bps = 10e9;
      cfg.leaf_limit = 2 * sc.flows + 16;
      sched::HfscInstance eng(cfg);
      // 256 guaranteed-rate classes (rsc+fsc), flows split across them by
      // the /16 filters, per-flow DRR leaves inside each class.
      const sched::ServiceCurve rate{10e9 / 8.0 / 256.0, 0,
                                     10e9 / 8.0 / 256.0};
      for (int k = 0; k < 256; ++k) {
        const std::string name = "c" + std::to_string(k);
        if (eng.add_class(name, "root", rate, rate, {},
                          sched::HfscInstance::LeafQdisc::drr, 1500) !=
            netbase::Status::ok) {
          std::fprintf(stderr, "hfsc add_class failed\n");
          return 1;
        }
        auto f = aiu::Filter::parse("<10." + std::to_string(k) +
                                    ".0.0/16, *, udp, *, *, *>");
        if (!f.has_value() ||
            eng.bind_class(*f, name) != netbase::Status::ok) {
          std::fprintf(stderr, "hfsc bind_class failed\n");
          return 1;
        }
      }
      r_hfsc = measure_hfsc(eng, softs, sc.flows,
                            sc.flows < hfsc_sample ? sc.flows : hfsc_sample);
    }

    if (!r_eiffel.ok() || !r_drr.ok() || !r_hfsc.ok()) return 1;
    std::printf("%-8s %10zu %12.1f %12.1f %12.1f\n", sc.tag, sc.flows,
                r_eiffel.per_event(), r_drr.per_event(), r_hfsc.per_event());

    json.num(std::string("eiffel_") + sc.tag + "_ns", r_eiffel.per_event())
        .num(std::string("drr_") + sc.tag + "_ns", r_drr.per_event())
        .num(std::string("hfsc_") + sc.tag + "_ns", r_hfsc.per_event());
    if (sc.flows == scales[0].flows) eiffel_10k = r_eiffel.per_event();
    eiffel_1m = r_eiffel.per_event();
  }

  const double flatness = eiffel_10k > 0 ? eiffel_1m / eiffel_10k : 0;
  json.num("eiffel_flatness_1m_vs_10k", flatness).emit();
  std::printf("\nEiffel 1M/10k flatness ratio: %.3f (target <= 1.25)\n",
              flatness);
  return 0;
}

// Table 2 reproduction: memory accesses for one filter-table lookup.
//
// The paper accounts 20 accesses for IPv4 and 24 for IPv6 with ~50,000
// installed filters (binary search on prefix lengths as the BMP plugin):
//   fn pointer (BMP) 1 + fn pointer (index hash) 1 + IP lookups 10/14 +
//   port lookups 2 + DAG edges 6  =  20 / 24.
// Our instrumentation counts the same work directly: one access per DAG
// node fetch, one per BMP hash probe, one per exact-port/proto/iface probe.
// The key claim — the count is independent of the number of filters — is
// shown by sweeping the filter count.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "aiu/filter_table.hpp"
#include "bench_json.hpp"
#include "netbase/memaccess.hpp"
#include "tgen/workload.hpp"

using namespace rp;

namespace {

struct Row {
  std::size_t filters;
  netbase::IpVersion ver;
  std::uint64_t worst;
  double avg;
};

Row measure(std::size_t n, netbase::IpVersion ver, const char* engine) {
  aiu::DagFilterTable::Options opt;
  opt.bmp_engine = engine;
  aiu::DagFilterTable table(opt);

  // Filter shape per the paper's target workload: end-to-end application
  // flows plus network prefixes — addresses always specified (prefix 8..32
  // for v4, 16..64 for v6), ports mostly exact or wild.
  tgen::FilterSetSpec spec;
  spec.count = n;
  spec.ver = ver;
  spec.seed = 42 + n;
  spec.p_wild_src = 0.0;
  spec.p_wild_dst = 0.0;
  spec.p_wild_proto = 0.2;
  spec.p_port_exact = 0.5;
  spec.p_port_range = 0.0;
  // Realistic length bands that still hit the paper's worst-case probe
  // depth: 25 distinct IPv4 lengths (5 probes per address) and 65 distinct
  // IPv6 lengths (7 probes per address, the log2(128) the paper accounts).
  spec.v4_min_len = 8;
  spec.v4_max_len = 32;
  spec.v6_min_len = 16;
  spec.v6_max_len = 80;
  auto filters = tgen::random_filters(spec);
  // Concentrate sources into a pool of 64 networks so the per-edge
  // destination tables are dense as well — the paper's worst case has both
  // address lookups walking full-depth BMP structures.
  std::vector<netbase::IpPrefix> pool;
  for (const auto& f : filters) {
    pool.push_back(f.src);
    if (pool.size() == 64) break;
  }
  for (std::size_t i = 0; i < filters.size(); ++i)
    filters[i].src = pool[i % pool.size()];
  for (const auto& f : filters) table.insert(f, nullptr);
  table.prepare();  // build outside the measurement

  netbase::Rng rng(7);
  std::uint64_t worst = 0, total = 0;
  const int kProbes = rp::bench::scaled(5000, 50);
  for (int i = 0; i < kProbes; ++i) {
    // Probe with keys that match installed filters (worst case walks the
    // full DAG depth) and with random keys.
    pkt::FlowKey k = (i % 4 == 0)
                         ? tgen::random_key(rng, ver)
                         : tgen::matching_key(
                               filters[rng.below(filters.size())], rng);
    netbase::MemAccess::reset();
    table.lookup(k);
    std::uint64_t a = netbase::MemAccess::total();
    worst = std::max(worst, a);
    total += a;
  }
  return {n, ver, worst, static_cast<double>(total) / kProbes};
}

}  // namespace

int main() {
  std::printf(
      "Table 2 — Memory accesses for a filter lookup (DAG + binary search on\n"
      "prefix lengths), sweeping the number of installed filters.\n"
      "Paper worst case: IPv4 = 20, IPv6 = 24 (independent of filter count)\n\n");
  std::printf("%10s  %6s  %14s  %12s\n", "filters", "family", "worst accesses",
              "avg accesses");

  rp::bench::BenchJson json("t2_filter_memaccess");
  for (auto ver : {netbase::IpVersion::v4, netbase::IpVersion::v6}) {
    for (std::size_t n : {1000UL, 10000UL, 50000UL}) {
      Row r = measure(n, ver, "bsl");
      std::printf("%10zu  %6s  %14llu  %12.1f\n", r.filters,
                  r.ver == netbase::IpVersion::v4 ? "IPv4" : "IPv6",
                  static_cast<unsigned long long>(r.worst), r.avg);
      if (n == 50000UL) {
        const char* fam = ver == netbase::IpVersion::v4 ? "v4" : "v6";
        json.num(std::string(fam) + "_worst_accesses",
                 static_cast<double>(r.worst));
        json.num(std::string(fam) + "_avg_accesses", r.avg);
      }
    }
  }
  json.emit();

  std::printf(
      "\nPer-component accounting (paper Table 2 vs this implementation):\n"
      "  access to BMP/index-hash function pointers: paper 2, ours counted\n"
      "  as part of the 6 per-level node fetches; IP address lookups: <=5/<=7\n"
      "  hash probes per address (2 addresses); port lookup: 1 exact-hash\n"
      "  probe each; proto/iface: 1 probe each.\n");
  return 0;
}

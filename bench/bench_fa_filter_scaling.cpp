// Figure A (§7.2): filter-table lookup cost vs number of installed filters.
//
// The paper's claim: the DAG classifier is O(fields) — "more or less
// independent of the number of filters" — while "most existing techniques
// require O(n) time". We sweep 2^4 .. 2^14 filters and report both lookup
// time and counted memory accesses for the DAG and the linear-scan
// baseline, showing the flat-vs-linear shapes and the crossover at tiny n.
#include <chrono>
#include <cstdio>
#include <vector>

#include "aiu/filter_table.hpp"
#include "bench_json.hpp"
#include "netbase/memaccess.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

struct Sample {
  double ns;
  double accesses;
};

Sample measure(aiu::FilterTableBase& table,
               const std::vector<aiu::Filter>& filters, std::uint64_t seed) {
  netbase::Rng rng(seed);
  // Pre-generate probe keys (half matching, half random).
  std::vector<pkt::FlowKey> keys;
  const int kProbes = rp::bench::scaled(2000, 20);
  keys.reserve(kProbes);
  for (int i = 0; i < kProbes; ++i) {
    keys.push_back(i % 2 ? tgen::random_key(rng)
                         : tgen::matching_key(
                               filters[rng.below(filters.size())], rng));
  }
  table.lookup(keys[0]);  // force any lazy build

  netbase::MemAccess::reset();
  auto t0 = Clock::now();
  for (const auto& k : keys) table.lookup(k);
  auto t1 = Clock::now();
  double total_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return {total_ns / kProbes,
          static_cast<double>(netbase::MemAccess::total()) / kProbes};
}

}  // namespace

int main() {
  std::printf(
      "Figure A — Filter lookup cost vs number of filters\n"
      "(DAG/set-pruning classifier vs O(n) linear scan baseline)\n\n");
  std::printf("%8s  %12s %12s  %14s %14s\n", "filters", "dag ns", "linear ns",
              "dag accesses", "lin accesses");

  const std::size_t kMaxFilters = rp::bench::scaled<std::size_t>(16384, 256);
  for (std::size_t n = 16; n <= kMaxFilters; n *= 4) {
    tgen::FilterSetSpec spec;
    spec.count = n;
    spec.seed = n;
    spec.p_wild_src = 0.0;  // address-specified filters (see DESIGN.md)
    spec.p_wild_dst = 0.0;
    spec.p_port_range = 0.0;
    auto filters = tgen::random_filters(spec);

    aiu::DagFilterTable dag;
    aiu::LinearFilterTable lin;
    for (const auto& f : filters) {
      dag.insert(f, nullptr);
      lin.insert(f, nullptr);
    }
    Sample d = measure(dag, filters, n + 1);
    Sample l = measure(lin, filters, n + 1);
    std::printf("%8zu  %12.1f %12.1f  %14.1f %14.1f\n", n, d.ns, l.ns,
                d.accesses, l.accesses);
    if (n == kMaxFilters) {
      rp::bench::BenchJson("fa_filter_scaling")
          .num("filters", static_cast<double>(n))
          .num("dag_ns", d.ns)
          .num("linear_ns", l.ns)
          .num("dag_accesses", d.accesses)
          .num("linear_accesses", l.accesses)
          .emit();
    }
  }

  std::printf(
      "\nExpected shape: DAG columns stay flat; linear columns grow ~n.\n");
  return 0;
}

// PR 7 headline: cost of stateful L7 inspection, and what the verdict
// cache buys back.
//
//   row 1: l7ids inspecting every byte of a bidirectional TCP conversation
//          (inspect_limit=0 — reassembly + Aho-Corasick over the full
//          stream). Reported both as ns/packet and ns/payload-byte.
//   row 2: the same conversation with the verdict cache on
//          (inspect_limit=4 KB): the engine inspects the first 4 KB,
//          rules the flow clean, and offloads it — the AIU clears the l7
//          gate binding on both directions, so the remaining packets skip
//          the gate entirely. Acceptance: >= 5x over row 1.
//   rows 3/4: the Table-3 workload (3 UDP flows, 8 KB datagrams, 16
//          filters per policy gate, bursts of kMaxBurst — the deployed
//          ingress shape) with and without the l7 gate in the gate order,
//          nothing bound at it. An unbound l7 gate must cost only a
//          bound_mask bit test per chunk — acceptance: <= 2% overhead.
//
// Per-rep connections use distinct source ports so every rep exercises
// connection setup, reassembly, and verdict from scratch; stale flows are
// expired between reps, untimed.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/ip_core.hpp"
#include "l7/l7_plugins.hpp"
#include "plugin/pcu.hpp"
#include "tgen/tcp_stream.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

const int kTcpReps = rp::bench::scaled(120, 2);
const int kUdpReps = rp::bench::scaled(2000, 2);
constexpr std::size_t kStreamBytes = 64 * 1024;  // each direction: half
constexpr netbase::SimTime kSweepAll =
    std::numeric_limits<netbase::SimTime>::max();

// ---------------------------------------------------------------------------
// Rows 1-2: TCP conversations through a core with l7ids bound to all TCP.

struct TcpResult {
  double ns_pkt;
  double ns_byte;
};

tgen::TcpStreamSpec conversation(std::uint16_t sport) {
  tgen::TcpStreamSpec sp;
  sp.ep.src = *netbase::IpAddr::parse("10.0.0.1");
  sp.ep.dst = *netbase::IpAddr::parse("20.0.0.1");
  sp.ep.proto = 6;
  sp.ep.sport = sport;
  sp.ep.dport = 80;
  sp.ep.in_iface = 0;
  sp.mss = 1024;
  sp.payload = tgen::plant(kStreamBytes, 7, {{kStreamBytes / 2, "EVIL"}});
  sp.reverse_payload = tgen::plant(kStreamBytes / 2, 8, {});
  return sp;
}

TcpResult run_tcp(std::uint64_t inspect_limit) {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  aiu::Aiu aiu(pcu, clock);
  route::RoutingTable routes("bsl");
  netdev::InterfaceTable ifs;
  ifs.add("if0");
  ifs.add("if1");
  routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  routes.add(*netbase::IpPrefix::parse("10.0.0.0/8"), {0, {}});
  core::IpCore core(aiu, routes, ifs, clock, core::CoreConfig{});

  pcu.register_plugin(std::make_unique<l7::IdsPlugin>());
  plugin::InstanceId id = plugin::kNoInstance;
  pcu.find("l7ids")->create_instance(
      {{"patterns", "EVILCORP,needle,haystack"},
       {"alert_on_match", "0"},
       {"inspect_limit", std::to_string(inspect_limit)}},
      id);
  aiu.create_filter(plugin::PluginType::l7,
                    *aiu::Filter::parse("<*, *, tcp, *, *, *>"),
                    pcu.find("l7ids")->instance(id));

  std::size_t pkts = 0, payload_bytes = 0;
  double best_ns = 1e30;
  for (int rep = 0; rep < kTcpReps; ++rep) {
    // Packet construction and flow cleanup excluded from the timing.
    auto arrivals = tgen::tcp_stream(
        conversation(static_cast<std::uint16_t>(1024 + rep)));
    pkts = arrivals.size();
    payload_bytes = kStreamBytes + kStreamBytes / 2;
    auto tp0 = Clock::now();
    for (auto& a : arrivals) core.process(std::move(a.p));
    auto tp1 = Clock::now();
    for (pkt::IfIndex ifx : {pkt::IfIndex{0}, pkt::IfIndex{1}}) {
      pkt::PacketPtr out;
      while ((out = core.next_for_tx(ifx, 0))) out.reset();
    }
    aiu.flow_table().expire_idle(kSweepAll);
    const double ns =
        std::chrono::duration<double, std::nano>(tp1 - tp0).count();
    if (ns < best_ns) best_ns = ns;
  }
  return {best_ns / static_cast<double>(pkts),
          best_ns / static_cast<double>(payload_bytes)};
}

// ---------------------------------------------------------------------------
// Rows 3-4: the Table-3 UDP workload; the l7 gate is present but unbound.

class EmptyInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};
class EmptyPlugin final : public plugin::Plugin {
 public:
  EmptyPlugin(std::string name, plugin::PluginType t)
      : Plugin(std::move(name), t) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyInstance>();
  }
};

double run_udp(bool with_l7_gate) {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  aiu::Aiu aiu(pcu, clock);
  route::RoutingTable routes("bsl");
  netdev::InterfaceTable ifs;
  ifs.add("if0");
  ifs.add("if1");
  routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

  core::CoreConfig cfg;
  // Gate order stats/ipopt/ipsec: the same three policy gates, ordered so
  // NEITHER row matches the compile-time fused 3-gate chain — otherwise the
  // base row would fuse and the +l7 row would not, and the delta would
  // measure loss of fusion instead of the unbound gate's mask test. (The
  // deployed default gate order has 6 gates and never fuses either.)
  cfg.input_gates = {plugin::PluginType::stats, plugin::PluginType::ipopt,
                     plugin::PluginType::ipsec};
  if (with_l7_gate) cfg.input_gates.push_back(plugin::PluginType::l7);
  core::IpCore core(aiu, routes, ifs, clock, cfg);

  // The paper's 16 filters per policy gate: 13 that never match plus a
  // catch-all. Nothing is installed at the l7 gate.
  const plugin::PluginType gates[3] = {plugin::PluginType::ipopt,
                                       plugin::PluginType::ipsec,
                                       plugin::PluginType::stats};
  const char* names[3] = {"g1", "g2", "g3"};
  for (int g = 0; g < 3; ++g) {
    pcu.register_plugin(std::make_unique<EmptyPlugin>(names[g], gates[g]));
    plugin::InstanceId id = plugin::kNoInstance;
    pcu.find(names[g])->create_instance({}, id);
    plugin::PluginInstance* inst = pcu.find(names[g])->instance(id);
    for (int i = 0; i < 13; ++i) {
      aiu::Filter f;
      f.src =
          *netbase::IpPrefix::parse("99.77." + std::to_string(i) + ".0/24");
      f.proto = aiu::ProtoSpec::exact(6);
      aiu.create_filter(gates[g], f, inst);
    }
    aiu.create_filter(gates[g], *aiu::Filter::parse("10.0.0.0/8 * udp * * *"),
                      inst);
  }

  std::vector<tgen::FlowEndpoints> eps;
  for (int f = 0; f < 3; ++f) {
    tgen::FlowEndpoints ep;
    ep.src = netbase::IpAddr(
        netbase::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(f + 1)));
    ep.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    ep.proto = 17;
    ep.sport = static_cast<std::uint16_t>(5000 + f);
    ep.dport = 9000;
    eps.push_back(ep);
  }

  constexpr int kPerFlow = 100;
  std::vector<pkt::PacketPtr> batch;
  auto make_batch = [&] {
    batch.clear();
    for (int i = 0; i < kPerFlow; ++i)
      for (const auto& ep : eps) batch.push_back(tgen::packet_for(ep, 8192));
  };
  auto drain = [&] {
    pkt::PacketPtr out;
    while ((out = core.next_for_tx(1, 0))) out.reset();
  };

  // Bursts of kMaxBurst, the deployed ingress shape (the NIC drains rx
  // rings in bursts): the unbound gate's mask test amortizes per chunk.
  auto ingress = [&] {
    for (std::size_t off = 0; off < batch.size(); off += aiu::Aiu::kMaxBurst) {
      const std::size_t n = std::min(aiu::Aiu::kMaxBurst, batch.size() - off);
      core.process_burst({batch.data() + off, n});
    }
  };

  make_batch();
  ingress();  // warmup: flow cache
  drain();

  double best_ns = 1e30;
  for (int rep = 0; rep < kUdpReps; ++rep) {
    make_batch();
    auto tp0 = Clock::now();
    ingress();
    auto tp1 = Clock::now();
    drain();
    const double ns =
        std::chrono::duration<double, std::nano>(tp1 - tp0).count() /
        (3 * kPerFlow);
    if (ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

}  // namespace

int main() {
  std::printf(
      "Table 10 — Stateful L7 inspection (l7ids, %zu KB + %zu KB streams,\n"
      "mss 1024, %d TCP reps / %d UDP reps)\n\n",
      kStreamBytes / 1024, kStreamBytes / 2048, kTcpReps, kUdpReps);

  const TcpResult full = run_tcp(0);
  const TcpResult offload = run_tcp(4096);
  const double udp_base = run_udp(false);
  const double udp_l7 = run_udp(true);
  const double unbound_rel = (udp_l7 - udp_base) / udp_base;

  std::printf("%-44s %12s %12s\n", "configuration", "ns/packet", "ns/byte");
  std::printf("%-44s %12.1f %12.2f\n", "inspect everything (inspect_limit=0)",
              full.ns_pkt, full.ns_byte);
  std::printf("%-44s %12.1f %12.2f  (%.2fx)\n",
              "verdict cache + offload (inspect_limit=4K)", offload.ns_pkt,
              offload.ns_byte, full.ns_pkt / offload.ns_pkt);
  std::printf("\n%-44s %12s\n", "T3 UDP workload", "ns/packet");
  std::printf("%-44s %12.1f\n", "3 policy gates, no l7 gate", udp_base);
  std::printf("%-44s %12.1f  (%+.2f%%)\n", "3 policy gates + unbound l7 gate",
              udp_l7, 100.0 * unbound_rel);

  rp::bench::BenchJson("t10_l7")
      .num("inspect_ns_per_byte", full.ns_byte)
      .num("inspect_all_ns_pkt", full.ns_pkt)
      .num("offload_ns_pkt", offload.ns_pkt)
      .num("offload_speedup", full.ns_pkt / offload.ns_pkt)
      .num("t3_base_ns_pkt", udp_base)
      .num("t3_l7gate_ns_pkt", udp_l7)
      .num("unbound_overhead_rel", unbound_rel)
      .emit();
  return 0;
}

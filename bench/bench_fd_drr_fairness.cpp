// Figure D (§6.1): weighted DRR link sharing — the paper's demo of the
// plugin framework enforcing per-flow bandwidth shares ("extremely useful
// for demonstrations of the link-sharing capabilities").
//
// Four UDP flows with weights {1, 1, 2, 10} saturate an 8 Mb/s link through
// the full router (event loop, DRR plugin bound at the scheduling gate via
// pmgr). We report per-flow goodput, the achieved ratio vs the configured
// weight, and Jain's fairness index over weight-normalized shares.
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_json.hpp"
#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "pkt/builder.hpp"
#include "tgen/workload.hpp"

using namespace rp;

int main() {
  const std::uint32_t weights[4] = {1, 1, 2, 10};
  const std::uint64_t link_bps = 8'000'000;
  const netbase::SimTime duration = rp::bench::scaled<netbase::SimTime>(
      netbase::kNsPerSec, 20 * netbase::kNsPerMs);

  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.interfaces().add("out0", link_bps);
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);

  // The paper's pmgr flavour: load, create, attach, bind, set weights.
  std::string script = R"(
route add 20.0.0.0/8 if1
modload drr
create drr quantum=500
attach drr 1 if1
bind drr 1 <10.0.0.0/8, *, udp, *, *, *>
)";
  for (int f = 0; f < 4; ++f) {
    script += "msg drr 1 setweight filter=<10.0.0." + std::to_string(f + 1) +
              ",*,udp,*,*,*> weight=" + std::to_string(weights[f]) + "\n";
  }
  auto r = pmgr.run_script(script);
  if (!r.ok()) {
    std::fprintf(stderr, "config failed: %s\n", r.text.c_str());
    return 1;
  }

  std::map<std::uint8_t, std::uint64_t> bytes;
  out.set_tx_sink([&](pkt::PacketPtr p, netbase::SimTime) {
    bytes[static_cast<std::uint8_t>(p->key.src.v4().v & 0xff)] += p->size();
  });

  // Each flow offers the full link rate (4x overload): 500-byte packets.
  for (std::uint8_t f = 1; f <= 4; ++f) {
    pkt::UdpSpec s;
    s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, f));
    s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    s.sport = f;
    s.dport = 80;
    s.payload_len = 472;
    const netbase::SimTime interval =
        static_cast<netbase::SimTime>(500.0 * 8 * 1e9 / link_bps);
    for (netbase::SimTime t = 0; t < duration; t += interval)
      k.inject(t, 0, pkt::build_udp(s));
  }
  k.run_until(duration);

  std::printf(
      "Figure D — Weighted DRR link sharing (8 Mb/s link, 4x overload,\n"
      "weights 1:1:2:10, 1 second of virtual time)\n\n");
  std::printf("%6s %8s %12s %12s %14s\n", "flow", "weight", "bytes",
              "goodput bps", "share/weight");

  double total_norm = 0, total_norm_sq = 0;
  std::uint64_t w1_bytes = bytes[1];
  for (int f = 1; f <= 4; ++f) {
    double bps = static_cast<double>(bytes[f]) * 8 /
                 (static_cast<double>(duration) / 1e9);
    double norm = static_cast<double>(bytes[f]) / weights[f - 1];
    total_norm += norm;
    total_norm_sq += norm * norm;
    std::printf("%6d %8u %12llu %12.0f %14.0f\n", f, weights[f - 1],
                static_cast<unsigned long long>(bytes[f]), bps, norm);
  }
  double jain = total_norm * total_norm / (4.0 * total_norm_sq);
  std::printf("\nJain fairness index over weight-normalized shares: %.4f\n",
              jain);
  std::printf("weight-10 flow vs weight-1 flow ratio: %.2f (ideal 10.0)\n",
              w1_bytes ? static_cast<double>(bytes[4]) / w1_bytes : 0.0);
  rp::bench::BenchJson("fd_drr_fairness")
      .num("jain_index", jain)
      .num("w10_vs_w1_ratio",
           w1_bytes ? static_cast<double>(bytes[4]) / w1_bytes : 0.0)
      .emit();
  std::printf(
      "\nExpected shape: shares proportional to weights (index ~= 1.0),\n"
      "as in the paper's link-sharing demonstrations.\n");
  return 0;
}

// T7 — worker scaling of the sharded datapath on the Table-3 workload
// (UDP flows of 8 KB datagrams, 16 installed filters, three empty-plugin
// gates). Each worker owns a private router stack; packets are steered by
// flow hash, so aggregate throughput should scale with workers until the
// machine runs out of CPUs.
//
// Two readings per worker count:
//   * wall      — packets / elapsed time, submission through quiesce. Honest
//     end-to-end, but on a host with fewer CPUs than workers the threads
//     time-share one core and wall cannot scale.
//   * capacity  — sum over workers of (packets / thread-CPU-busy-ns), from
//     Worker::busy_ns() (CLOCK_THREAD_CPUTIME_ID around burst processing).
//     This is the aggregate rate the shards would sustain on dedicated
//     cores — the number that shows whether sharding itself scales (no
//     shared state, no lock or cache-line contention between shards).
//
// The BENCH_JSON line carries both; `speedup_4w` (the headline) is the
// capacity speedup when the host is CPU-limited (cpus < workers), else the
// wall speedup, with `mode`/`cpu_limited` recording which was used.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "parallel/sharded_datapath.hpp"
#include "tgen/workload.hpp"

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kFlows = 16;  // enough distinct flow hashes to load 4 shards
constexpr int kPacketsPerFlow = 100;
const int kReps = rp::bench::scaled(60, 2);
constexpr std::size_t kPayload = 8192;  // 8 KB datagrams, no fragmentation

class EmptyInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};
class EmptyPlugin final : public plugin::Plugin {
 public:
  EmptyPlugin(std::string name, plugin::PluginType t)
      : Plugin(std::move(name), t) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyInstance>();
  }
};

std::vector<tgen::FlowEndpoints> flows() {
  std::vector<tgen::FlowEndpoints> out;
  for (int f = 0; f < kFlows; ++f) {
    tgen::FlowEndpoints ep;
    ep.src = netbase::IpAddr(
        netbase::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(f + 1)));
    ep.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    ep.proto = 17;
    ep.sport = static_cast<std::uint16_t>(5000 + f);
    ep.dport = 9000;
    out.push_back(ep);
  }
  return out;
}

// The paper's 16 filters per gate: 13 that never match + a catch-all.
void install_filters(aiu::Aiu& aiu, plugin::PluginType gate,
                     plugin::PluginInstance* inst) {
  for (int i = 0; i < 13; ++i) {
    aiu::Filter f;
    f.src = *netbase::IpPrefix::parse("99.77." + std::to_string(i) + ".0/24");
    f.proto = aiu::ProtoSpec::exact(6);
    aiu.create_filter(gate, f, inst);
  }
  aiu::Filter all = *aiu::Filter::parse("10.0.0.0/8 * udp * * *");
  aiu.create_filter(gate, all, inst);
}

// Table-3 row-2 configuration, replicated into every shard.
void setup_shard(parallel::ShardContext& ctx) {
  ctx.interfaces().add("if0");
  ctx.interfaces().add("if1");
  ctx.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  const plugin::PluginType gates[3] = {plugin::PluginType::ipopt,
                                       plugin::PluginType::ipsec,
                                       plugin::PluginType::stats};
  const char* names[3] = {"e1", "e2", "e3"};
  for (int g = 0; g < 3; ++g) {
    ctx.pcu().register_plugin(std::make_unique<EmptyPlugin>(names[g], gates[g]));
    plugin::InstanceId id = plugin::kNoInstance;
    ctx.pcu().find(names[g])->create_instance({}, id);
    install_filters(ctx.aiu(), gates[g], ctx.pcu().find(names[g])->instance(id));
  }
}

struct RunResult {
  double wall_pps{0};
  double capacity_pps{0};
  std::uint64_t packets{0};
};

RunResult run_workers(std::uint32_t nworkers) {
  parallel::ShardedDatapath::Options opt;
  opt.workers = nworkers;
  opt.ring_capacity = 1024;
  opt.measure_busy = true;
  opt.shard.core.input_gates = {plugin::PluginType::ipopt,
                                plugin::PluginType::ipsec,
                                plugin::PluginType::stats};
  opt.shard.telemetry.sample_every = 0;  // measure the datapath, not probes
  parallel::ShardedDatapath dp(opt, setup_shard);

  const auto eps = flows();
  std::vector<pkt::PacketPtr> batch;
  batch.reserve(static_cast<std::size_t>(kFlows) * kPacketsPerFlow);
  auto make_batch = [&] {
    batch.clear();
    for (int i = 0; i < kPacketsPerFlow; ++i)
      for (const auto& ep : eps) batch.push_back(tgen::packet_for(ep, kPayload));
  };

  // Warmup: populate every shard's flow cache.
  make_batch();
  for (auto& p : batch) dp.submit(std::move(p));
  dp.quiesce();

  std::vector<std::uint64_t> busy0(nworkers), proc0(nworkers);
  for (std::uint32_t w = 0; w < nworkers; ++w) {
    busy0[w] = dp.worker(w).busy_ns();
    proc0[w] = dp.worker(w).processed();
  }

  // One timed window over the whole run, first build to final drain. Packet
  // construction is inside it (identical cost in every row, and on a
  // multi-CPU host it genuinely overlaps with shard processing); timing only
  // the submit calls would let workers drain rings during untimed windows
  // and fake wall scaling on a single-CPU host.
  std::uint64_t packets = 0;
  const auto t0 = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    make_batch();
    for (auto& p : batch) dp.submit(std::move(p));
    packets += static_cast<std::uint64_t>(kFlows) * kPacketsPerFlow;
  }
  dp.quiesce();
  const double wall_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - t0).count();

  RunResult r;
  r.packets = packets;
  r.wall_pps = packets / wall_ns * 1e9;
  for (std::uint32_t w = 0; w < nworkers; ++w) {
    const std::uint64_t busy = dp.worker(w).busy_ns() - busy0[w];
    const std::uint64_t done = dp.worker(w).processed() - proc0[w];
    if (busy && done) r.capacity_pps += static_cast<double>(done) / busy * 1e9;
  }
  dp.stop();
  return r;
}

}  // namespace

int main() {
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf(
      "T7 — sharded-datapath worker scaling (Table-3 workload: %d UDP flows,\n"
      "8 KB datagrams, 16 filters, 3 empty gates; %d pkts/flow x %d reps;\n"
      "host has %u CPU(s))\n\n",
      kFlows, kPacketsPerFlow, kReps, cpus);

  const std::uint32_t worker_counts[] = {1, 2, 4};
  RunResult res[3];
  for (int i = 0; i < 3; ++i) res[i] = run_workers(worker_counts[i]);

  std::printf("%8s %14s %14s %12s %12s\n", "workers", "wall pkts/s",
              "capacity p/s", "wall x", "capacity x");
  for (int i = 0; i < 3; ++i) {
    std::printf("%8u %14.0f %14.0f %11.2fx %11.2fx\n", worker_counts[i],
                res[i].wall_pps, res[i].capacity_pps,
                res[i].wall_pps / res[0].wall_pps,
                res[i].capacity_pps / res[0].capacity_pps);
  }

  const double speedup_wall = res[2].wall_pps / res[0].wall_pps;
  const double speedup_capacity = res[2].capacity_pps / res[0].capacity_pps;
  const bool cpu_limited = cpus < 4;
  const double headline = cpu_limited ? speedup_capacity : speedup_wall;
  std::printf(
      "\n4-worker speedup: wall %.2fx, capacity %.2fx (headline %.2fx, %s)\n",
      speedup_wall, speedup_capacity, headline,
      cpu_limited ? "capacity: host has fewer CPUs than workers, so the "
                    "shards time-share cores and wall time cannot scale"
                  : "wall");

  rp::bench::BenchJson("t7_shard")
      .num("cpus", cpus)
      .num("wall_pps_1w", res[0].wall_pps)
      .num("wall_pps_2w", res[1].wall_pps)
      .num("wall_pps_4w", res[2].wall_pps)
      .num("capacity_pps_1w", res[0].capacity_pps)
      .num("capacity_pps_2w", res[1].capacity_pps)
      .num("capacity_pps_4w", res[2].capacity_pps)
      .num("speedup_wall_4w", speedup_wall)
      .num("speedup_capacity_4w", speedup_capacity)
      .num("speedup_4w", headline)
      .num("cpu_limited", cpu_limited ? 1 : 0)
      .str("mode", cpu_limited ? "capacity" : "wall")
      .emit();
  return 0;
}

// T13 — pluggable I/O backends + per-worker packet pools: true multi-core
// scaling with an imbalance story.
//
// The multi-queue backend (io::MemQueueBackend) gives each worker an RSS
// queue pair it drains directly — no central ingress ring — and the submit
// thread allocates every packet from a recycling PacketPool, so the steady
// state performs ~zero heap allocations per packet. Measured here:
//
//   * wall / capacity pkts/s at 1, 2 and 4 workers, on uniform traffic and
//     on zipf(1.1) flow popularity (the skew that loads one RSS queue);
//   * the same zipf run with flow migration enabled (hot RETA buckets
//     rebound to the least-loaded queue at submission boundaries) —
//     occupancy and migration counters show the steal policy working;
//   * pool hit rate and operator-new allocations per packet (a global
//     operator-new counter in this binary), the ~0 allocs/pkt headline.
//
// Like T7: wall cannot scale when the host has fewer CPUs than workers, so
// the headline speedup falls back to the capacity reading with
// `cpu_limited` recording the substitution.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "parallel/sharded_datapath.hpp"
#include "pkt/packet_pool.hpp"
#include "tgen/workload.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: every operator-new in this binary bumps one relaxed
// counter. The delta across the timed window divided by packets is the
// allocs/pkt metric — with pools it must sit near zero in steady state.

static std::atomic<std::uint64_t> g_news{0};

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace rp;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kFlows = 256;
constexpr std::size_t kPayload = 512;
constexpr int kPacketsPerRep = 2000;
const int kReps = rp::bench::scaled(40, 2);

class EmptyInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};
class EmptyPlugin final : public plugin::Plugin {
 public:
  EmptyPlugin(std::string name, plugin::PluginType t)
      : Plugin(std::move(name), t) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<EmptyInstance>();
  }
};

// Table-3 flavour replicated into every shard: two interfaces, one route,
// three empty gates with the 13-miss + catch-all filter set.
void setup_shard(parallel::ShardContext& ctx) {
  ctx.interfaces().add("if0");
  ctx.interfaces().add("if1");
  ctx.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  const plugin::PluginType gates[3] = {plugin::PluginType::ipopt,
                                       plugin::PluginType::ipsec,
                                       plugin::PluginType::stats};
  const char* names[3] = {"e1", "e2", "e3"};
  for (int g = 0; g < 3; ++g) {
    ctx.pcu().register_plugin(
        std::make_unique<EmptyPlugin>(names[g], gates[g]));
    plugin::InstanceId id = plugin::kNoInstance;
    ctx.pcu().find(names[g])->create_instance({}, id);
    auto* inst = ctx.pcu().find(names[g])->instance(id);
    for (int i = 0; i < 13; ++i) {
      aiu::Filter f;
      f.src =
          *netbase::IpPrefix::parse("99.77." + std::to_string(i) + ".0/24");
      f.proto = aiu::ProtoSpec::exact(6);
      ctx.aiu().create_filter(gates[g], f, inst);
    }
    ctx.aiu().create_filter(gates[g],
                            *aiu::Filter::parse("10.0.0.0/8 * udp * * *"),
                            inst);
  }
}

std::vector<tgen::FlowEndpoints> flows() {
  std::vector<tgen::FlowEndpoints> out;
  out.reserve(kFlows);
  for (int f = 0; f < kFlows; ++f) {
    tgen::FlowEndpoints ep;
    ep.src = netbase::IpAddr(netbase::Ipv4Addr(
        10, 0, static_cast<std::uint8_t>(f >> 8),
        static_cast<std::uint8_t>(f & 0xff)));
    ep.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    ep.proto = 17;
    ep.sport = static_cast<std::uint16_t>(5000 + (f & 0x3ff));
    ep.dport = 9000;
    out.push_back(ep);
  }
  return out;
}

struct RunResult {
  double wall_pps{0};
  double capacity_pps{0};
  std::uint64_t packets{0};
  double allocs_per_pkt{0};
  double pool_hit_rate{0};
  std::uint64_t migrations{0};
  std::uint64_t max_queue_share_x100{0};  // busiest queue's % of enqueues
};

RunResult run(std::uint32_t nworkers, double zipf_s, bool migrate) {
  parallel::ShardedDatapath::Options opt;
  opt.workers = nworkers;
  opt.ring_capacity = 1024;
  opt.measure_busy = true;
  opt.io.mode = parallel::ShardedDatapath::IoOptions::Mode::multiq;
  opt.io.migrate_threshold = migrate ? 0.5 : 0.0;
  opt.shard.core.input_gates = {plugin::PluginType::ipopt,
                                plugin::PluginType::ipsec,
                                plugin::PluginType::stats};
  opt.shard.telemetry.sample_every = 0;
  parallel::ShardedDatapath dp(opt, setup_shard);

  const auto eps = flows();
  tgen::ZipfSampler pick(kFlows, zipf_s, 42);
  // Pool sized past the rings' worst case: every queue full plus bursts in
  // flight still leaves free chunks, so steady state never falls back.
  pkt::PacketPool pool(
      {.chunks = 1024 * nworkers + 4096, .buf_bytes = 2048});
  pkt::PacketPool::Use scope(pool);

  // Warmup: touch every flow so each shard's flow table is hot.
  for (const auto& ep : eps) dp.submit(tgen::packet_for(ep, kPayload));
  dp.quiesce();

  std::vector<std::uint64_t> busy0(nworkers), proc0(nworkers);
  for (std::uint32_t w = 0; w < nworkers; ++w) {
    busy0[w] = dp.worker(w).busy_ns();
    proc0[w] = dp.worker(w).processed();
  }
  const auto pool0 = pool.stats();
  const std::uint64_t news0 = g_news.load(std::memory_order_relaxed);

  // One timed window, construction included (see bench_t7's rationale:
  // untimed construction would let single-CPU hosts fake wall scaling).
  std::uint64_t packets = 0;
  const auto t0 = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    for (int i = 0; i < kPacketsPerRep; ++i)
      dp.submit(tgen::packet_for(eps[pick.next()], kPayload));
    packets += kPacketsPerRep;
  }
  dp.quiesce();
  const double wall_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
  const std::uint64_t news1 = g_news.load(std::memory_order_relaxed);
  const auto pool1 = pool.stats();

  RunResult r;
  r.packets = packets;
  r.wall_pps = packets / wall_ns * 1e9;
  for (std::uint32_t w = 0; w < nworkers; ++w) {
    const std::uint64_t busy = dp.worker(w).busy_ns() - busy0[w];
    const std::uint64_t done = dp.worker(w).processed() - proc0[w];
    if (busy && done)
      r.capacity_pps += static_cast<double>(done) / busy * 1e9;
  }
  r.allocs_per_pkt = static_cast<double>(news1 - news0) / packets;
  const std::uint64_t allocs = pool1.allocs - pool0.allocs;
  r.pool_hit_rate =
      allocs ? static_cast<double>(pool1.pool_hits - pool0.pool_hits) / allocs
             : 0;
  r.migrations = dp.migrations();
  std::uint64_t enq_total = 0, enq_max = 0;
  for (std::uint32_t q = 0; q < nworkers; ++q) {
    const auto s = dp.queue_stats(q);
    enq_total += s.rx_enqueued;
    enq_max = std::max(enq_max, s.rx_enqueued);
  }
  if (enq_total) r.max_queue_share_x100 = enq_max * 100 / enq_total;
  dp.stop();
  return r;
}

void print_rows(const char* title, const RunResult* res,
                const std::uint32_t* wc, int n) {
  std::printf("%s\n%8s %14s %14s %8s %8s %10s %8s %6s\n", title, "workers",
              "wall pkts/s", "capacity p/s", "wall x", "cap x", "allocs/pkt",
              "hit%", "maxq%");
  for (int i = 0; i < n; ++i) {
    std::printf("%8u %14.0f %14.0f %7.2fx %7.2fx %10.4f %7.1f%% %5llu%%\n",
                wc[i], res[i].wall_pps, res[i].capacity_pps,
                res[i].wall_pps / res[0].wall_pps,
                res[i].capacity_pps / res[0].capacity_pps,
                res[i].allocs_per_pkt, res[i].pool_hit_rate * 100,
                static_cast<unsigned long long>(res[i].max_queue_share_x100));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf(
      "T13 — multi-queue I/O backend + per-worker packet pools\n"
      "(%d flows, %zu B payload, 3 empty gates, 16 filters/gate;\n"
      "%d pkts/rep x %d reps; host has %u CPU(s))\n\n",
      kFlows, kPayload, kPacketsPerRep, kReps, cpus);

  const std::uint32_t wc[] = {1, 2, 4};
  RunResult uni[3], zipf[3];
  for (int i = 0; i < 3; ++i) uni[i] = run(wc[i], 0.0, false);
  for (int i = 0; i < 3; ++i) zipf[i] = run(wc[i], 1.1, false);
  print_rows("uniform flow popularity:", uni, wc, 3);
  print_rows("zipf(1.1) flow popularity:", zipf, wc, 3);

  // The steal policy under the same skew: migrations should fire and shave
  // the busiest queue's share of the enqueues.
  const RunResult steal = run(4, 1.1, true);
  std::printf(
      "zipf(1.1) + migration, 4 workers: wall %.0f p/s, capacity %.0f p/s,\n"
      "migrations=%llu, busiest queue %llu%% of enqueues (was %llu%%)\n\n",
      steal.wall_pps, steal.capacity_pps,
      static_cast<unsigned long long>(steal.migrations),
      static_cast<unsigned long long>(steal.max_queue_share_x100),
      static_cast<unsigned long long>(zipf[2].max_queue_share_x100));

  const bool cpu_limited = cpus < 4;
  const double su_wall_uni = uni[2].wall_pps / uni[0].wall_pps;
  const double su_cap_uni = uni[2].capacity_pps / uni[0].capacity_pps;
  const double su_wall_zipf = zipf[2].wall_pps / zipf[0].wall_pps;
  const double su_cap_zipf = zipf[2].capacity_pps / zipf[0].capacity_pps;
  const double headline_uni = cpu_limited ? su_cap_uni : su_wall_uni;
  const double headline_zipf = cpu_limited ? su_cap_zipf : su_wall_zipf;
  std::printf(
      "4-worker speedup: uniform %.2fx, zipf %.2fx (%s); allocs/pkt %.4f, "
      "pool hit rate %.1f%%\n",
      headline_uni, headline_zipf,
      cpu_limited ? "capacity: host is CPU-limited, wall cannot scale"
                  : "wall",
      zipf[2].allocs_per_pkt, zipf[2].pool_hit_rate * 100);

  rp::bench::BenchJson("t13_iobackend")
      .num("cpus", cpus)
      .num("wall_pps_1w_uniform", uni[0].wall_pps)
      .num("wall_pps_2w_uniform", uni[1].wall_pps)
      .num("wall_pps_4w_uniform", uni[2].wall_pps)
      .num("wall_pps_1w_zipf", zipf[0].wall_pps)
      .num("wall_pps_2w_zipf", zipf[1].wall_pps)
      .num("wall_pps_4w_zipf", zipf[2].wall_pps)
      .num("capacity_pps_4w_uniform", uni[2].capacity_pps)
      .num("capacity_pps_4w_zipf", zipf[2].capacity_pps)
      .num("speedup_4w_uniform", headline_uni)
      .num("speedup_4w_zipf", headline_zipf)
      .num("allocs_per_pkt", zipf[2].allocs_per_pkt)
      .num("pool_hit_rate", zipf[2].pool_hit_rate)
      .num("migrations_zipf_4w", static_cast<double>(steal.migrations))
      .num("max_queue_share_zipf", static_cast<double>(
                                       zipf[2].max_queue_share_x100))
      .num("max_queue_share_steal", static_cast<double>(
                                        steal.max_queue_share_x100))
      .num("cpu_limited", cpu_limited ? 1 : 0)
      .str("mode", cpu_limited ? "capacity" : "wall")
      .emit();
  return 0;
}

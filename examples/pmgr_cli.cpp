// pmgr as an interactive utility — the paper's Plugin Manager is "a simple
// application which takes arguments from the command line"; this example
// wraps the same command language in a REPL over a live router so you can
// poke at the system by hand:
//
//   ./pmgr_cli                 # interactive
//   ./pmgr_cli < config.pmgr   # script mode
//
// Extra REPL-only commands: `counters` (core counters), `flows` (flow-table
// stats), `tick <ms>` (advance virtual time), `send <src> <dst> <proto>
// <sport> <dport> [n]` (inject packets), `help`, `quit`.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"

using namespace rp;

namespace {

void print_help() {
  std::puts(
      "plugin commands: modload/modunload/lsmod, create, free, bind, unbind,\n"
      "                 msg, attach, route add  (see mgmt/pmgr.hpp)\n"
      "repl commands:   send <src> <dst> <udp|tcp> <sport> <dport> [count]\n"
      "                 tick <ms>   advance virtual time\n"
      "                 counters    core counters\n"
      "                 flows       flow table statistics\n"
      "                 help, quit");
}

}  // namespace

int main() {
  core::RouterKernel router;
  mgmt::register_builtin_modules();
  router.add_interface("if0");
  router.add_interface("if1");
  mgmt::RouterPluginLib lib(router);
  mgmt::PluginManager pmgr(lib);

  std::size_t delivered = 0;
  router.interfaces().by_index(1)->set_tx_sink(
      [&](pkt::PacketPtr, netbase::SimTime) { ++delivered; });

  const bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::puts("router plugins shell — 2 interfaces (if0 in, if1 out); "
              "type 'help'");
  }

  std::string line;
  while (true) {
    if (interactive) std::fputs("pmgr> ", stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      print_help();
      continue;
    }
    if (cmd == "counters") {
      const auto& c = router.core().counters();
      std::printf("received=%llu forwarded=%llu drops=%llu gate_calls=%llu "
                  "fragments=%llu delivered=%zu\n",
                  static_cast<unsigned long long>(c.received),
                  static_cast<unsigned long long>(c.forwarded),
                  static_cast<unsigned long long>(c.total_drops()),
                  static_cast<unsigned long long>(c.gate_calls),
                  static_cast<unsigned long long>(c.fragments_created),
                  delivered);
      continue;
    }
    if (cmd == "flows") {
      const auto& fs = router.aiu().flow_table().stats();
      std::printf("active=%zu hits=%llu misses=%llu recycled=%llu\n",
                  router.aiu().flow_table().active(),
                  static_cast<unsigned long long>(fs.hits),
                  static_cast<unsigned long long>(fs.misses),
                  static_cast<unsigned long long>(fs.recycled));
      continue;
    }
    if (cmd == "tick") {
      long ms = 1;
      iss >> ms;
      router.run_until(router.clock().now() + ms * netbase::kNsPerMs);
      std::printf("t=%lld ms\n",
                  static_cast<long long>(router.clock().now() /
                                         netbase::kNsPerMs));
      continue;
    }
    if (cmd == "send") {
      std::string src, dst, proto;
      int sport = 0, dport = 0, count = 1;
      iss >> src >> dst >> proto >> sport >> dport >> count;
      auto s = netbase::IpAddr::parse(src);
      auto d = netbase::IpAddr::parse(dst);
      if (!s || !d || (proto != "udp" && proto != "tcp")) {
        std::puts("usage: send <src> <dst> <udp|tcp> <sport> <dport> [count]");
        continue;
      }
      for (int i = 0; i < count; ++i) {
        pkt::PacketPtr p;
        if (proto == "udp") {
          pkt::UdpSpec u;
          u.src = *s;
          u.dst = *d;
          u.sport = static_cast<std::uint16_t>(sport);
          u.dport = static_cast<std::uint16_t>(dport);
          u.payload_len = 100;
          p = pkt::build_udp(u);
        } else {
          pkt::TcpSpec t;
          t.src = *s;
          t.dst = *d;
          t.sport = static_cast<std::uint16_t>(sport);
          t.dport = static_cast<std::uint16_t>(dport);
          t.payload_len = 100;
          p = pkt::build_tcp(t);
        }
        router.inject(router.clock().now() + i * 1000, 0, std::move(p));
      }
      router.run_to_completion();
      std::printf("sent %d packet(s)\n", count);
      continue;
    }

    auto r = pmgr.exec(line);
    if (!r.text.empty()) std::puts(r.text.c_str());
    if (!r.ok()) std::printf("error: %s\n",
                             std::string(netbase::to_string(r.status)).c_str());
  }
  return 0;
}

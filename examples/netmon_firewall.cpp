// Network monitoring + firewall — the paper's management and ALG use cases:
// "network management applications ... need to monitor transit traffic ...
// and change the kinds of statistics being collected without incurring
// significant overhead", and firewalls that "apply different policies to
// different flows".
//
// This example runs a transit router, watches traffic with the stats
// plugin, switches the statistics mode at run time, spots a bandwidth hog,
// and hot-installs a deny rule for exactly that flow — all while packets
// keep flowing. A final phase turns the telemetry subsystem on the same
// traffic: per-gate latency histograms, sampled path traces (including the
// firewall's drops), and a NetFlow-style export of the flow cache.
//
// Run:  ./netmon_firewall
#include <cstdio>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"
#include "tgen/workload.hpp"

using namespace rp;

namespace {

void offer_traffic(core::RouterKernel& k, netbase::SimTime from,
                   netbase::SimTime until, bool with_hog) {
  // Normal users: 4 modest flows.
  for (std::uint8_t u = 1; u <= 4; ++u) {
    pkt::UdpSpec s;
    s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, u));
    s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    s.sport = u;
    s.dport = 80;
    s.payload_len = 200;
    for (netbase::SimTime t = from; t < until; t += 10 * netbase::kNsPerMs)
      k.inject(t, 0, pkt::build_udp(s));
  }
  if (with_hog) {
    pkt::UdpSpec s;
    s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 66));
    s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    s.sport = 666;
    s.dport = 80;
    s.payload_len = 1400;
    for (netbase::SimTime t = from; t < until; t += netbase::kNsPerMs)
      k.inject(t, 0, pkt::build_udp(s));
  }
}

}  // namespace

int main() {
  core::RouterKernel router;
  mgmt::register_builtin_modules();
  router.add_interface("in");
  router.add_interface("out");
  mgmt::RouterPluginLib lib(router);
  mgmt::PluginManager pmgr(lib);

  auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload stats
create stats mode=packets
bind stats 1 <*, *, *, *, *, *>
)");
  if (!r.ok()) {
    std::fprintf(stderr, "config failed: %s\n", r.text.c_str());
    return 1;
  }

  // Phase 1: watch packet counts.
  offer_traffic(router, 0, 200 * netbase::kNsPerMs, true);
  router.run_to_completion();
  std::printf("== phase 1: packet counting ==\n%s\n",
              pmgr.exec("msg stats 1 report").text.c_str());

  // Phase 2: switch to byte accounting at run time — no reload, no
  // interruption (the paper's "change the kinds of statistics being
  // collected" requirement).
  pmgr.exec("msg stats 1 setmode mode=bytes");
  pmgr.exec("msg stats 1 reset");
  offer_traffic(router, 300 * netbase::kNsPerMs, 500 * netbase::kNsPerMs,
                true);
  router.run_to_completion();
  auto report = pmgr.exec("msg stats 1 report");
  std::printf("== phase 2: byte accounting ==\n%s\n", report.text.c_str());

  // The operator spots the hog (10.0.0.66) and drops exactly that flow.
  std::printf("== phase 3: hot-install a deny rule for the hog ==\n");
  pmgr.exec("modload firewall");
  pmgr.exec("create firewall policy=deny");
  pmgr.exec("bind firewall 1 <10.0.0.66, *, udp, *, *, *>");

  auto before = router.core().counters().forwarded;
  offer_traffic(router, 600 * netbase::kNsPerMs, 800 * netbase::kNsPerMs,
                true);
  router.run_to_completion();
  auto after = router.core().counters();
  std::printf("forwarded %llu more packets; policy drops now %llu\n",
              static_cast<unsigned long long>(after.forwarded - before),
              static_cast<unsigned long long>(
                  after.dropped(core::DropReason::policy)));
  std::printf("%s\n", pmgr.exec("msg firewall 1 stats").text.c_str());
  std::printf("(normal users were never disturbed: per-flow classification\n"
              " means the policy touches only the offending flow)\n");

  // Phase 4: the telemetry view of the same router. Crank sampling up to
  // every packet, replay the mixed traffic, and read back what the
  // observability subsystem saw: where the cycles go per gate, the exact
  // path (and drop point) of recent packets, and the flow-cache accounting
  // records a collector would ingest.
  std::printf("== phase 4: telemetry ==\n");
  pmgr.exec("telemetry reset");
  pmgr.exec("telemetry sample 1");
  offer_traffic(router, 900 * netbase::kNsPerMs, 1000 * netbase::kNsPerMs,
                true);
  // run_until (not run_to_completion): leaves the flow cache warm so the
  // export below snapshots live flows; run_to_completion would sweep them
  // out first (those sweeps emit reason=expired records on their own).
  router.run_until(1100 * netbase::kNsPerMs);
  std::printf("-- summary --\n%s\n", pmgr.exec("telemetry").text.c_str());
  std::printf("-- firewall gate histogram --\n%s",
              pmgr.exec("telemetry hist firewall").text.c_str());
  std::printf("-- two recent path traces --\n%s\n",
              pmgr.exec("telemetry trace 2").text.c_str());
  std::printf("-- plugin metrics --\n%s\n",
              pmgr.exec("telemetry metrics").text.c_str());
  auto exported = pmgr.exec("telemetry export");
  std::printf("-- flow export: %s; sink %s --\n", exported.text.c_str(),
              router.telemetry().sink().describe().c_str());
  return 0;
}

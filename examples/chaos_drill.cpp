// Chaos drill — exercising the resilience subsystem end to end:
//   1. bind a (deliberately flaky) firewall plugin to a flow filter,
//   2. inject faults through the supervisor's harness (pmgr resilience),
//   3. watch the circuit breaker trip, bypass, and recover,
//   4. read the fault ledger: status, events, and telemetry metrics.
//
// Run:  ./chaos_drill
#include <cstdio>
#include <memory>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"
#include "resilience/resilience.hpp"

using namespace rp;

namespace {

// A plugin with a bug we can switch on: when `broken`, every packet throws.
class FlakyInstance final : public plugin::PluginInstance {
 public:
  static inline bool broken = false;
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    if (broken) throw std::runtime_error("use-after-free in rule cache");
    return plugin::Verdict::cont;
  }
};

class FlakyPlugin final : public plugin::Plugin {
 public:
  FlakyPlugin() : Plugin("flaky_fw", plugin::PluginType::firewall) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<FlakyInstance>();
  }
};

pkt::PacketPtr udp_packet(std::uint16_t sport) {
  pkt::UdpSpec u;
  u.src = *netbase::IpAddr::parse("10.0.0.7");
  u.dst = *netbase::IpAddr::parse("20.0.0.1");
  u.sport = sport;
  u.dport = 53;
  u.payload_len = 64;
  return pkt::build_udp(u);
}

void show(mgmt::PluginManager& pmgr, const char* cmd) {
  auto r = pmgr.exec(cmd);
  std::printf("pmgr> %s\n%s\n\n", cmd, r.text.c_str());
}

}  // namespace

int main() {
  core::RouterKernel router;
  mgmt::register_builtin_modules();
  router.add_interface("if0");
  router.add_interface("if1");

  mgmt::RouterPluginLib lib(router);
  mgmt::PluginManager pmgr(lib);
  pmgr.exec("route add 20.0.0.0/8 if1");

  // Install the flaky firewall on all UDP from 10/8.
  router.pcu().register_plugin(std::make_unique<FlakyPlugin>());
  plugin::InstanceId id = plugin::kNoInstance;
  router.pcu().find("flaky_fw")->create_instance({}, id);
  router.aiu().create_filter(plugin::PluginType::firewall,
                             *aiu::Filter::parse("10.0.0.0/8 * udp * * *"),
                             router.pcu().find("flaky_fw")->instance(id));

  auto send = [&](int n) {
    for (int i = 0; i < n; ++i)
      router.core().process(udp_packet(static_cast<std::uint16_t>(4000 + i)));
  };

  std::puts("== 1. healthy traffic ==\n");
  send(20);
  show(pmgr, "resilience status");

  std::puts("== 2. the plugin starts crashing (tight error budget) ==\n");
  pmgr.exec("resilience budget 64 3 8 2");  // 3 faults trip; 8-call cooldown
  FlakyInstance::broken = true;
  send(3);  // three throws: contained fail_open, breaker trips
  show(pmgr, "resilience status");
  show(pmgr, "resilience events 3");

  std::puts("== 3. while Open the instance is bypassed entirely ==\n");
  send(7);  // cooldown: the plugin is never called, packets fail open
  show(pmgr, "resilience status");

  std::puts("== 4. the bug is fixed; probes re-admit the instance ==\n");
  FlakyInstance::broken = false;
  send(4);  // half-open probes succeed -> breaker closes
  show(pmgr, "resilience status");

  std::puts("== 5. the injection harness does the same without a bug ==\n");
  pmgr.exec("resilience reset all");
  show(pmgr, "resilience inject firewall bad_verdict every 5");
  send(20);
  show(pmgr, "resilience status");
  pmgr.exec("resilience inject off");

  const auto& cc = router.core().counters();
  std::printf("conservation: received=%llu forwarded=%llu drops=%llu\n",
              static_cast<unsigned long long>(cc.received),
              static_cast<unsigned long long>(cc.forwarded),
              static_cast<unsigned long long>(cc.total_drops()));
  return 0;
}

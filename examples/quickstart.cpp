// Quickstart — the smallest complete EISR router:
//   1. build a router with two interfaces and a route,
//   2. load a plugin module at run time (modload),
//   3. create an instance and bind it to a flow filter,
//   4. push traffic through and read the plugin's statistics.
//
// Run:  ./quickstart
#include <cstdio>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"

using namespace rp;

int main() {
  // The router kernel: IP core + AIU classifier + PCU + event loop.
  core::RouterKernel router;
  mgmt::register_builtin_modules();  // put the plugin modules "on disk"

  router.add_interface("if0");  // receive side
  auto& out = router.add_interface("if1", 155'000'000);  // OC-3 out

  // User space: the Router Plugin Library and the pmgr front end.
  mgmt::RouterPluginLib lib(router);
  mgmt::PluginManager pmgr(lib);

  // A boot-style configuration script (see §6 of the paper): route,
  // modload, create_instance, bind-to-flow.
  auto result = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload stats
create stats mode=bytes
bind stats 1 <10.0.0.0/8, *, udp, *, *, *>
)");
  if (!result.ok()) {
    std::fprintf(stderr, "configuration failed: %s\n", result.text.c_str());
    return 1;
  }
  std::puts("router configured: stats plugin bound to <10/8, *, udp, *, *, *>");

  // Count what leaves the output wire.
  std::size_t delivered = 0;
  out.set_tx_sink([&](pkt::PacketPtr, netbase::SimTime) { ++delivered; });

  // Offer two flows: one matching the filter, one not (TCP).
  for (int i = 0; i < 50; ++i) {
    pkt::UdpSpec u;
    u.src = *netbase::IpAddr::parse("10.0.0.7");
    u.dst = *netbase::IpAddr::parse("20.0.0.1");
    u.sport = 4000;
    u.dport = 53;
    u.payload_len = 120;
    router.inject(i * netbase::kNsPerMs, 0, pkt::build_udp(u));

    pkt::TcpSpec t;
    t.src = *netbase::IpAddr::parse("10.0.0.8");
    t.dst = *netbase::IpAddr::parse("20.0.0.1");
    t.sport = 5000;
    t.dport = 80;
    t.payload_len = 300;
    router.inject(i * netbase::kNsPerMs + 100, 0, pkt::build_tcp(t));
  }
  router.run_to_completion();

  std::printf("delivered %zu packets; router counters: received=%llu "
              "forwarded=%llu\n",
              delivered,
              static_cast<unsigned long long>(router.core().counters().received),
              static_cast<unsigned long long>(
                  router.core().counters().forwarded));

  // Ask the plugin what it saw (control path, via the plugin socket).
  auto report = pmgr.exec("msg stats 1 report");
  std::printf("\nstats plugin report (only the UDP flow matched):\n%s\n",
              report.text.c_str());

  // Flow-cache behaviour: 2 flows -> 2 classifications, everything else
  // was served from the flow table.
  const auto& fs = router.aiu().flow_table().stats();
  std::printf("flow cache: %llu misses, %llu hits\n",
              static_cast<unsigned long long>(fs.misses),
              static_cast<unsigned long long>(fs.hits));
  return 0;
}

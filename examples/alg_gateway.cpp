// Application Layer Gateway — the paper singles ALGs out as a natural fit:
// "Our framework is also very well suited to Application Layer Gateways
// (ALGs) ... it is very important to be able to quickly and efficiently
// classify packets into flows, and to apply different policies to
// different flows."
//
// Scenario: an FTP-style protocol. Data connections (high ports) are denied
// by default. The ALG plugin watches the *control* connection (port 21);
// when the client announces a data port ("PORT <n>"), the plugin — from
// inside the data path — installs a one-flow permit filter through the same
// AIU interfaces every other component uses. The pinhole opens exactly for
// the announced flow, while unrelated high-port traffic stays blocked.
//
// Run:  ./alg_gateway
#include <charconv>
#include <cstdio>
#include <cstring>
#include <string_view>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"

using namespace rp;

namespace {

// The ALG plugin: a firewall-type plugin whose instance parses control
// traffic and programs pinhole filters.
class FtpAlgInstance final : public plugin::PluginInstance {
 public:
  FtpAlgInstance(aiu::Aiu& aiu, plugin::PluginInstance* permit)
      : aiu_(aiu), permit_(permit) {}

  plugin::Verdict handle_packet(pkt::Packet& p, void**) override {
    // Look for "PORT <n>" in the TCP payload of the control connection.
    if (p.l4_offset + 20u >= p.size()) return plugin::Verdict::cont;
    std::string_view payload(
        reinterpret_cast<const char*>(p.data() + p.l4_offset + 20),
        p.size() - p.l4_offset - 20);
    auto pos = payload.find("PORT ");
    if (pos == std::string_view::npos) return plugin::Verdict::cont;
    unsigned port = 0;
    auto num = payload.substr(pos + 5);
    std::from_chars(num.data(), num.data() + num.size(), port);
    if (port == 0 || port > 65535) return plugin::Verdict::cont;

    // Pinhole: permit the announced data flow (server -> client data port).
    aiu::Filter f;
    f.src = netbase::IpPrefix(p.key.dst, p.key.dst.width());  // server
    f.dst = netbase::IpPrefix(p.key.src, p.key.src.width());  // client
    f.proto = aiu::ProtoSpec::exact(6);
    f.dport = aiu::PortSpec::exact(static_cast<std::uint16_t>(port));
    if (aiu_.create_filter(plugin::PluginType::firewall, f, permit_) ==
        netbase::Status::ok) {
      std::printf("[alg] control says PORT %u -> pinhole %s\n", port,
                  f.to_string().c_str());
      ++pinholes_;
    }
    return plugin::Verdict::cont;
  }

  int pinholes() const noexcept { return pinholes_; }

 private:
  aiu::Aiu& aiu_;
  plugin::PluginInstance* permit_;
  int pinholes_{0};
};

class FtpAlgPlugin final : public plugin::Plugin {
 public:
  FtpAlgPlugin(aiu::Aiu& aiu, plugin::PluginInstance* permit)
      : Plugin("ftp-alg", plugin::PluginType::firewall),
        aiu_(aiu),
        permit_(permit) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<FtpAlgInstance>(aiu_, permit_);
  }

 private:
  aiu::Aiu& aiu_;
  plugin::PluginInstance* permit_;
};

pkt::PacketPtr tcp_pkt(const char* src, const char* dst, std::uint16_t sport,
                       std::uint16_t dport, const char* payload = "") {
  pkt::TcpSpec s;
  s.src = *netbase::IpAddr::parse(src);
  s.dst = *netbase::IpAddr::parse(dst);
  s.sport = sport;
  s.dport = dport;
  s.payload_len = std::strlen(payload);
  auto p = pkt::build_tcp(s);
  std::memcpy(p->data() + p->l4_offset + 20, payload, std::strlen(payload));
  return p;
}

}  // namespace

int main() {
  core::RouterKernel router;
  mgmt::register_builtin_modules();
  router.add_interface("inside");
  router.add_interface("outside");
  mgmt::RouterPluginLib lib(router);
  mgmt::PluginManager pmgr(lib);

  // Base policy: deny all inbound high-port TCP, permit the control port.
  auto r = pmgr.run_script(R"(
route add 0.0.0.0/0 if1
modload firewall
create firewall policy=deny
bind firewall 1 <*, *, tcp, *, 1024-65535, *>
create firewall policy=permit
bind firewall 2 <*, *, tcp, *, 21, *>
)");
  if (!r.ok()) {
    std::fprintf(stderr, "config failed: %s\n", r.text.c_str());
    return 1;
  }
  auto* permit = router.pcu().find_instance("firewall", 2);

  // Load the ALG (created directly: it needs the AIU handle) and attach it
  // to the control connection only.
  router.pcu().register_plugin(
      std::make_unique<FtpAlgPlugin>(router.aiu(), permit));
  plugin::InstanceId alg_id = plugin::kNoInstance;
  router.pcu().find("ftp-alg")->create_instance({}, alg_id);
  lib.bind("ftp-alg", alg_id, "<*, *, tcp, *, 21, *>");

  auto drops = [&] {
    return router.core().counters().dropped(core::DropReason::policy);
  };

  // 1. Data connection before any announcement: blocked.
  router.inject(0, 0, tcp_pkt("172.16.0.9", "192.168.1.5", 20, 5001));
  router.run_to_completion();
  std::printf("before PORT: data packet dropped (policy drops=%llu)\n",
              static_cast<unsigned long long>(drops()));

  // 2. Client announces its data port on the control connection.
  router.inject(0, 0,
                tcp_pkt("192.168.1.5", "172.16.0.9", 4000, 21, "PORT 5001"));
  router.run_to_completion();

  // 3. The same data connection now sails through the pinhole...
  router.inject(0, 0, tcp_pkt("172.16.0.9", "192.168.1.5", 20, 5001));
  // ...while an unrelated high-port flow stays blocked.
  router.inject(100, 0, tcp_pkt("172.16.0.66", "192.168.1.5", 20, 6000));
  router.run_to_completion();

  std::printf("after PORT: forwarded=%llu, policy drops=%llu\n",
              static_cast<unsigned long long>(
                  router.core().counters().forwarded),
              static_cast<unsigned long long>(drops()));
  std::printf("(expected: 2 forwarded — control + pinholed data; 2 drops —\n"
              " the early data packet and the unrelated flow)\n");
  return 0;
}

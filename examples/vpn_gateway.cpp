// VPN gateway pair — the paper's security use case: "Security algorithms
// (e.g. to implement virtual private networks)". Two routers run the ipsec
// plugin: the entry gateway ESP-encrypts everything from the protected
// network; the exit gateway authenticates, decrypts, and forwards. An
// attacker on the WAN segment tampers with one packet and replays another —
// both are dropped by the exit gateway.
//
// Run:  ./vpn_gateway
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"

using namespace rp;

namespace {

constexpr const char* kSaScript =
    "msg ipsec - addsa spi=700 "
    "auth_key=0f1e2d3c4b5a69788796a5b4c3d2e1f000112233445566778899aabbccddeeff "
    "enc_key=000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e"
    "1f";

void configure(core::RouterKernel& k, const char* mode) {
  k.add_interface("lan");
  k.add_interface("wan");
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);
  auto r = pmgr.run_script(
      std::string("route add 0.0.0.0/0 if1\nmodload ipsec\n") + kSaScript +
      "\ncreate ipsec mode=" + mode +
      " spi=700\nbind ipsec 1 <192.168.0.0/16, *, *, *, *, *>\n");
  if (!r.ok()) {
    std::fprintf(stderr, "config failed: %s\n", r.text.c_str());
    std::exit(1);
  }
}

pkt::PacketPtr lan_packet(std::uint16_t sport, const char* payload_text) {
  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("192.168.1.10");
  s.dst = *netbase::IpAddr::parse("172.16.5.5");
  s.sport = sport;
  s.dport = 7777;
  s.payload_len = std::strlen(payload_text);
  auto p = pkt::build_udp(s);
  std::memcpy(p->data() + p->l4_offset + 8, payload_text,
              std::strlen(payload_text));
  return p;
}

}  // namespace

int main() {
  mgmt::register_builtin_modules();
  core::RouterKernel entry, exit_gw;
  configure(entry, "esp-encrypt");
  configure(exit_gw, "esp-decrypt");

  // Wire: entry.wan -> (attacker taps here) -> exit.lan... we use index 1
  // (wan) as entry egress, and deliver into exit's interface 0.
  std::vector<pkt::PacketPtr> wan_capture;  // attacker's view
  entry.interfaces().by_index(1)->set_tx_sink(
      [&](pkt::PacketPtr p, netbase::SimTime) {
        wan_capture.push_back(std::move(p));
      });

  std::vector<std::string> received;
  exit_gw.interfaces().by_index(1)->set_tx_sink(
      [&](pkt::PacketPtr p, netbase::SimTime) {
        const char* text =
            reinterpret_cast<const char*>(p->data() + p->l4_offset + 8);
        received.emplace_back(text, p->size() - p->l4_offset - 8);
      });

  // Three packets leave the protected LAN.
  entry.inject(0, 0, lan_packet(1, "attack at dawn"));
  entry.inject(1000, 0, lan_packet(2, "retreat at dusk"));
  entry.inject(2000, 0, lan_packet(3, "hold the line!"));
  entry.run_to_completion();

  std::printf("WAN segment carries %zu ESP packets (proto 50):\n",
              wan_capture.size());
  for (const auto& p : wan_capture) {
    std::printf("  %zu bytes, proto=%u — payload is ciphertext\n", p->size(),
                p->data()[9]);
  }

  // The attacker tampers with packet 2 and replays packet 1.
  auto forward = [&](const pkt::Packet& p) {
    auto fresh = pkt::make_packet(p.size());
    std::memcpy(fresh->data(), p.data(), p.size());
    exit_gw.inject(0, 0, std::move(fresh));
  };
  forward(*wan_capture[0]);
  wan_capture[1]->data()[45] ^= 0xff;  // flip a ciphertext bit
  forward(*wan_capture[1]);
  forward(*wan_capture[2]);
  forward(*wan_capture[0]);  // replay!
  exit_gw.run_to_completion();

  std::printf("\nexit gateway delivered %zu plaintexts:\n", received.size());
  for (const auto& s : received) std::printf("  \"%s\"\n", s.c_str());

  mgmt::RouterPluginLib lib(exit_gw);
  auto stats = lib.message("ipsec", 1, "stats");
  std::printf("\nexit ipsec instance: %s\n", stats.text.c_str());
  std::printf("(the tampered packet failed authentication; the replayed\n"
              " packet hit the anti-replay window — both were dropped)\n");
  return 0;
}

// Edge router with per-flow reservations — the paper's primary deployment
// story: "modern edge routers ... responsible for doing flow classification
// and for enforcing the configured profiles of differential service flows."
//
// Scenario: a campus uplink (10 Mb/s) carries
//   * a reserved video flow    (SSP reservation: 4 Mb/s),
//   * a reserved voice flow    (SSP reservation: 1 Mb/s),
//   * two greedy best-effort flows.
// The SSP daemon (the paper's simplified RSVP) installs the reservations as
// DRR weights + filters; best-effort flows share the remainder fairly.
//
// Run:  ./edge_router_diffserv
#include <cstdio>
#include <map>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "mgmt/ssp.hpp"
#include "pkt/builder.hpp"

using namespace rp;

namespace {

pkt::PacketPtr flow_pkt(std::uint16_t sport, std::size_t payload) {
  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("10.0.0.1");
  s.dst = *netbase::IpAddr::parse("20.0.0.1");
  s.sport = sport;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

}  // namespace

int main() {
  const std::uint64_t kLink = 10'000'000;
  core::RouterKernel router;
  mgmt::register_builtin_modules();
  router.add_interface("uplink-in");
  auto& out = router.interfaces().add("uplink-out", kLink);

  mgmt::RouterPluginLib lib(router);
  mgmt::PluginManager pmgr(lib);
  auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload drr
create drr quantum=500
attach drr 1 if1
)");
  if (!r.ok()) {
    std::fprintf(stderr, "config failed: %s\n", r.text.c_str());
    return 1;
  }

  // Reservations arrive over SSP (PATH announces the flow, RESV reserves).
  // Weight unit 500 kb/s: video 4 Mb/s -> weight 8, voice 1 Mb/s -> 2;
  // best-effort flows keep the default weight 1.
  mgmt::SspDaemon ssp(lib, "drr", 1, 500'000);
  ssp.path(1, "<10.0.0.1, 20.0.0.1, udp, 1, *, *>");  // video (sport 1)
  ssp.path(2, "<10.0.0.1, 20.0.0.1, udp, 2, *, *>");  // voice (sport 2)
  if (ssp.resv(1, 4'000'000) != netbase::Status::ok ||
      ssp.resv(2, 1'000'000) != netbase::Status::ok) {
    std::fprintf(stderr, "reservation failed\n");
    return 1;
  }
  std::printf("SSP sessions: video weight=%u, voice weight=%u\n",
              ssp.session(1)->weight, ssp.session(2)->weight);

  std::map<std::uint16_t, std::uint64_t> bytes;
  out.set_tx_sink([&](pkt::PacketPtr p, netbase::SimTime) {
    bytes[p->key.sport] += p->size();
  });

  // All four flows are greedy (each offers the full link).
  const netbase::SimTime dur = netbase::kNsPerSec;
  for (std::uint16_t f = 1; f <= 4; ++f) {
    const netbase::SimTime interval =
        static_cast<netbase::SimTime>(500.0 * 8 * 1e9 / kLink);
    for (netbase::SimTime t = 0; t < dur; t += interval)
      router.inject(t, 0, flow_pkt(f, 472));
  }
  router.run_until(dur);

  const char* names[] = {"video (resv 4M)", "voice (resv 1M)",
                         "best-effort A", "best-effort B"};
  // Weights 8:2:1:1 over 10 Mb/s -> 6.67/1.67/0.83/0.83 under full overload
  // (DRR shares strictly by weight; reservations are minimums, and excess
  // is shared in proportion to weight as well).
  std::printf("\n%-18s %12s %14s\n", "flow", "bytes", "goodput (Mb/s)");
  for (std::uint16_t f = 1; f <= 4; ++f) {
    std::printf("%-18s %12llu %14.2f\n", names[f - 1],
                static_cast<unsigned long long>(bytes[f]),
                static_cast<double>(bytes[f]) * 8 / 1e6);
  }

  // Tear down the video reservation; it becomes best-effort.
  ssp.teardown(1);
  std::printf("\nvideo reservation torn down; DRR filter count now %zu\n",
              router.aiu().filter_table(plugin::PluginType::sched)->size());
  return 0;
}
